"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses delineate the
subsystem at fault, which matters for the experiment harness: workload
errors are user-configuration problems, simulation errors are bugs in a
model, and trace errors indicate malformed on-disk artifacts.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class VideoError(ReproError):
    """Invalid video parameters, frame geometry, or pixel data."""


class CodecError(ReproError):
    """Invalid encoder configuration or an internal encoding failure."""


class TraceError(ReproError):
    """A trace file or in-memory trace stream is malformed."""


class SimulationError(ReproError):
    """A microarchitectural model was configured or driven incorrectly."""


class ExperimentError(ReproError):
    """An experiment was asked for an artifact it does not define."""


class TransientError(ReproError):
    """A failure that is expected to succeed on retry.

    The resilient executor (:mod:`repro.resilience`) retries cells that
    raise this class (with exponential backoff); anything else is
    treated as permanent.  Raise it for resource exhaustion, flaky
    backends, and injected faults of kind ``transient``.
    """


class FatalError(ReproError):
    """A failure that retrying cannot fix.

    Misconfiguration, contract violations and injected faults of kind
    ``fatal`` are permanent: the resilient executor quarantines the
    cell immediately instead of burning retries.
    """


class CellTimeoutError(TransientError):
    """A sweep cell exceeded its deadline.

    Subclasses :class:`TransientError` because a timeout on one attempt
    (scheduler noise, a stalled backend) may well succeed on the next;
    the retry budget bounds how often that optimism is tested.
    """


class CheckpointError(ReproError):
    """A run ledger could not be read, written, or understood."""


class QuarantinedCellError(ReproError):
    """A sweep cell failed permanently and was quarantined.

    Raised by the resilient executor after retries are exhausted (or a
    fatal error short-circuits them).  Sweep loops catch this, drop the
    cell, and record it in the experiment's provenance; ``key`` and
    ``cause`` identify what was lost and why.
    """

    def __init__(self, key: str, cause: BaseException) -> None:
        super().__init__(f"cell {key!r} quarantined: {cause!r}")
        self.key = key
        self.cause = cause


class WorkerCrashError(ReproError):
    """A pool worker died while holding a cell's lease.

    Raised (as the ``cause`` of a :class:`QuarantinedCellError`) when a
    cell crashes its worker process more than the crash budget allows —
    SIGKILL, ``os._exit``, OOM, or a hang past the heartbeat deadline.
    Counted separately from in-process retries: a crash tears down the
    whole worker, so the supervisor tracks it per *cell*, not per
    attempt, and classifies repeat offenders as poison.
    """

    def __init__(self, key: str, crashes: int, reason: str) -> None:
        super().__init__(
            f"cell {key!r} crashed its worker {crashes}x ({reason})"
        )
        self.key = key
        self.crashes = crashes
        self.reason = reason


class SweepInterruptedError(ReproError):
    """A sweep drained early on SIGINT/SIGTERM and left resumable state.

    The drain guard converts the first signal into an orderly stop:
    in-flight cells finish, the ledger is flushed, and this error
    propagates so the CLI can exit with a distinct code (130).  The run
    directory is left in a state ``--resume`` completes from.
    """

    def __init__(self, signal_name: str, completed: int, total: int) -> None:
        super().__init__(
            f"sweep drained after {signal_name}: "
            f"{completed}/{total} cells done; resume with --resume"
        )
        self.signal_name = signal_name
        self.completed = completed
        self.total = total


class CacheError(ReproError):
    """The result cache could not be administered.

    Raised only by cache *administration* (clearing or summarising a
    cache directory that cannot be read or written).  Cache *lookups*
    never raise: a missing, corrupt or stale entry is a miss, because a
    memoisation layer that can fail an experiment is worse than no
    memoisation at all.
    """


class ValidationError(ReproError):
    """The claims engine was driven with malformed data or config.

    Raised for structural problems — an unknown claim id, an extractor
    fed an experiment result missing its series, a checker given an
    empty or non-finite grid.  A claim that *evaluates* but does not
    hold never raises: failures are verdicts in the report, because a
    regression gate must report every claim, not stop at the first.
    """


class ShmError(ReproError):
    """A shared-memory segment could not be created or attached.

    Raised by the zero-copy data plane (:mod:`repro.parallel.shm`) when
    ``/dev/shm`` refuses a publish or a worker cannot attach a
    published segment.  Callers never propagate it to a sweep: the
    data plane falls back to pickled planes or in-worker regeneration,
    because video *delivery* must never decide whether a cell runs.
    """


class ServiceError(ReproError):
    """The encode-farm service layer could not operate.

    Raised for service-directory problems (an unreadable or corrupt
    job log, an unwritable service directory) and for API misuse
    (submitting an unknown experiment, cancelling a job that is not
    cancellable).  Admission *rejections* are not errors — a rejected
    job is a recorded verdict in the job log, because a service that
    throws at full queues cannot shed load gracefully.
    """


class ObservabilityError(ReproError):
    """A telemetry artifact could not be produced or understood.

    Raised for unwritable/corrupt span logs and trace exports and for
    metrics-registry misuse (conflicting histogram buckets, negative
    counter increments).  Never raised from instrumentation *sites* —
    tracing a span or bumping a counter cannot fail an experiment.
    """
