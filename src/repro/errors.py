"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses delineate the
subsystem at fault, which matters for the experiment harness: workload
errors are user-configuration problems, simulation errors are bugs in a
model, and trace errors indicate malformed on-disk artifacts.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class VideoError(ReproError):
    """Invalid video parameters, frame geometry, or pixel data."""


class CodecError(ReproError):
    """Invalid encoder configuration or an internal encoding failure."""


class TraceError(ReproError):
    """A trace file or in-memory trace stream is malformed."""


class SimulationError(ReproError):
    """A microarchitectural model was configured or driven incorrectly."""


class ExperimentError(ReproError):
    """An experiment was asked for an artifact it does not define."""
