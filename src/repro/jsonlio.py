"""Torn-line-tolerant JSONL reading, shared by every run artifact.

Three of the run directory's artifacts are append-only JSONL files
written by processes that may die mid-write: the resilience ledger,
the span log and the per-worker telemetry files.  All three therefore
share one failure signature — a *torn final line*, the partial record
a crash left behind — and one contract for reading it back:

- a torn **final** line is expected and tolerated: the reader drops it
  (and can optionally truncate it off the file, so a later append
  cannot concatenate onto the fragment and turn it into mid-file
  corruption);
- corruption anywhere **but** the final line still raises, because
  that means something other than a crash-mid-append happened.

:func:`load_jsonl` is that shared reader.  Writers that *append* to a
possibly-torn file call :func:`clean_tail` first, which durably
truncates a torn final line so the new record starts on a fresh line.

This module deliberately has no repro-internal imports (no metrics, no
events): callers own their error types and their instrumentation.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class TornLine:
    """Description of a torn (unparseable) final JSONL line."""

    line: str          # the fragment, as read
    offset: int        # byte offset of the fragment's first byte
    truncated: bool    # whether the fragment was removed from disk


def truncate_at(path: str, offset: int) -> None:
    """Durably cut ``path`` down to ``offset`` bytes.

    Raises :class:`OSError` when the file cannot be rewritten (the
    caller decides whether that is fatal — it is for the ledger, whose
    next append must not land on the fragment, but not for a read-only
    artifact viewer).
    """
    with open(path, "r+b") as handle:
        handle.truncate(offset)
        handle.flush()
        os.fsync(handle.fileno())


def load_jsonl(
    path: str,
    parse: Callable[[str], Any] = json.loads,
    *,
    truncate_torn: bool = False,
) -> tuple[list[Any], TornLine | None]:
    """Read a JSONL file, tolerating a torn final line.

    ``parse`` converts one line to one record; whatever it raises on a
    **non-final** line propagates unchanged (mid-file corruption is the
    caller's error to classify).  A final line ``parse`` rejects is
    returned as a :class:`TornLine` instead of a record; with
    ``truncate_torn`` the fragment is also durably removed from the
    file (an :class:`OSError` from that propagates).

    Blank lines are skipped.  Returns ``(records, torn)`` where
    ``torn`` is ``None`` for a clean file.
    """
    with open(path, encoding="utf-8") as handle:
        content = handle.read()
    lines = content.splitlines()
    records: list[Any] = []
    offset = 0
    for index, line in enumerate(lines):
        start = offset
        offset += len(line.encode("utf-8")) + 1
        if not line.strip():
            continue
        try:
            records.append(parse(line))
        except Exception:
            if index != len(lines) - 1:
                raise
            if truncate_torn:
                truncate_at(path, start)
            return records, TornLine(
                line=line, offset=start, truncated=truncate_torn
            )
    return records, None


def clean_tail(
    path: str, parse: Callable[[str], Any] = json.loads
) -> TornLine | None:
    """Remove a torn final line before appending to ``path``.

    Cheap pre-append guard for append-only JSONL writers: reads only
    the file's tail, and when the final line does not parse (and the
    file does not end in a newline — i.e. the signature of a crash
    mid-append, not a merely-odd record), truncates it durably.
    Returns what was dropped, ``None`` when the tail was clean or the
    file does not exist.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return None
    if size == 0:
        return None
    # Read a tail window generously larger than any one record line.
    window = min(size, 1 << 16)
    with open(path, "rb") as handle:
        handle.seek(size - window)
        tail = handle.read(window)
    if tail.endswith(b"\n"):
        return None
    # The final line is unterminated: a crash mid-append.  Find it.
    cut = tail.rfind(b"\n")
    if cut < 0 and window < size:
        # One unterminated line larger than the window: treat the
        # whole window start as unknown and re-read fully.
        records, torn = load_jsonl(path, parse, truncate_torn=True)
        return torn
    fragment = tail[cut + 1:]
    offset = size - len(fragment)
    try:
        parse(fragment.decode("utf-8", "replace"))
    except Exception:
        truncate_at(path, offset)
        return TornLine(
            line=fragment.decode("utf-8", "replace"),
            offset=offset,
            truncated=True,
        )
    # Parseable but unterminated (flush raced the newline): terminate
    # it so the next append starts cleanly.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n")
        handle.flush()
    return None
