"""Kernel-path switch: scalar reference vs. vectorized fast path.

PR 5 adds vectorized "in-cell" kernels (columnar predictor replay,
encoder block batching, the batched cache walk) underneath the existing
APIs.  Every fast path is **bit-equal** to the scalar reference it
replaces — same mispredict counts, same coded bits, same cache stats —
which parity tests and ``repro validate`` invariants assert.  The
scalar implementations are kept, both as the executable specification
the fast paths are tested against and as the baseline the kernel
benchmark suite (``benchmarks/test_kernel_speed.py``) times.

Selection:

- default — vectorized kernels;
- ``REPRO_SCALAR_KERNELS=1`` in the environment — scalar reference
  everywhere (inherited by pooled workers, so a whole sweep can be
  forced scalar);
- :func:`scalar_kernels` / :func:`vectorized_kernels` — scoped
  overrides for benchmarks and parity tests (innermost wins).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment flag: set to ``1``/``true``/``yes`` to force the scalar
#: reference kernels process-wide.
SCALAR_ENV = "REPRO_SCALAR_KERNELS"

#: Stack of scoped overrides; each entry is True for "force scalar".
_forced: list[bool] = []


def vectorized_enabled() -> bool:
    """True when the vectorized fast paths should run."""
    if _forced:
        return not _forced[-1]
    return os.environ.get(SCALAR_ENV, "").lower() not in ("1", "true", "yes")


@contextmanager
def scalar_kernels() -> Iterator[None]:
    """Force the scalar reference kernels inside the block."""
    _forced.append(True)
    try:
        yield
    finally:
        _forced.pop()


@contextmanager
def vectorized_kernels() -> Iterator[None]:
    """Force the vectorized kernels inside the block (overrides env)."""
    _forced.append(False)
    try:
        yield
    finally:
        _forced.pop()
