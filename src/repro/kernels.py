"""Kernel-path switch: scalar reference vs. vectorized fast path.

PR 5 adds vectorized "in-cell" kernels (columnar predictor replay,
encoder block batching, the batched cache walk) underneath the existing
APIs.  Every fast path is **bit-equal** to the scalar reference it
replaces — same mispredict counts, same coded bits, same cache stats —
which parity tests and ``repro validate`` invariants assert.  The
scalar implementations are kept, both as the executable specification
the fast paths are tested against and as the baseline the kernel
benchmark suite (``benchmarks/test_kernel_speed.py``) times.

Selection:

- default — vectorized kernels;
- ``REPRO_SCALAR_KERNELS=1`` in the environment — scalar reference
  everywhere (inherited by pooled workers, so a whole sweep can be
  forced scalar);
- :func:`scalar_kernels` / :func:`vectorized_kernels` — scoped
  overrides for benchmarks and parity tests (innermost wins).

PR 8 adds **streaming execution** on top: the vectorized replay and
cache-walk kernels process long event streams in bounded windows with
carried state, so peak memory stays O(window) instead of O(events) at
production frame counts.  Every kernel that streams writes back its
full post-window state (the ``replay-scalar-parity`` invariant's
probe-stream check pins this), so chunked execution is bit-equal to
whole-stream execution by construction — which the
``replay-chunk-parity`` invariant re-asserts directly.  The window is
:func:`stream_chunk_events`, tunable via ``REPRO_REPLAY_CHUNK``
(``0`` disables chunking) or the scoped :func:`stream_chunk` override.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment flag: set to ``1``/``true``/``yes`` to force the scalar
#: reference kernels process-wide.
SCALAR_ENV = "REPRO_SCALAR_KERNELS"

#: Environment override for the streaming window, in events per chunk
#: (``0`` = unbounded: whole-stream kernels, the pre-PR-8 behaviour).
CHUNK_ENV = "REPRO_REPLAY_CHUNK"

#: Default streaming window.  Large enough that per-chunk kernel setup
#: is noise (the vectorized replays sort the window once), small enough
#: that a chunk's temporaries stay a few MiB regardless of trace size.
DEFAULT_STREAM_CHUNK = 1 << 18

#: Stack of scoped overrides; each entry is True for "force scalar".
_forced: list[bool] = []

#: Stack of scoped chunk-size overrides (innermost wins).
_forced_chunk: list[int] = []


def vectorized_enabled() -> bool:
    """True when the vectorized fast paths should run."""
    if _forced:
        return not _forced[-1]
    return os.environ.get(SCALAR_ENV, "").lower() not in ("1", "true", "yes")


@contextmanager
def scalar_kernels() -> Iterator[None]:
    """Force the scalar reference kernels inside the block."""
    _forced.append(True)
    try:
        yield
    finally:
        _forced.pop()


@contextmanager
def vectorized_kernels() -> Iterator[None]:
    """Force the vectorized kernels inside the block (overrides env)."""
    _forced.append(False)
    try:
        yield
    finally:
        _forced.pop()


# Memoised env resolution: raw string -> validated window.  One entry
# per distinct raw value, so the (hot) per-kernel lookup is a dict hit
# and the structured warning for a bad value fires once, not per cell.
_chunk_env_cache: dict[str, int] = {}


def _resolve_chunk_env(raw: str) -> int:
    """Validate one ``REPRO_REPLAY_CHUNK`` value, warning on garbage.

    Only a non-negative integer is accepted (``0`` = unbounded, the
    documented way to disable chunking).  Anything else — non-numeric
    *or negative* — falls back to the default with a structured
    warning event.  The old parser silently clamped negatives to 0,
    which read as "disable chunking": a typo like ``-1`` quietly
    removed the memory bound this subsystem exists to provide.
    """
    try:
        value = int(raw)
    except ValueError:
        value = -1
    if value < 0:
        from .obs import events as obs_events

        obs_events.warn(
            "kernel.chunk.invalid",
            f"{CHUNK_ENV}={raw!r} is not a non-negative integer; "
            f"using the default window",
            raw=raw,
            default=DEFAULT_STREAM_CHUNK,
        )
        return DEFAULT_STREAM_CHUNK
    return value


def stream_chunk_events() -> int:
    """Streaming window in events per chunk; ``0`` means unbounded."""
    if _forced_chunk:
        return _forced_chunk[-1]
    raw = os.environ.get(CHUNK_ENV, "")
    if not raw:
        return DEFAULT_STREAM_CHUNK
    value = _chunk_env_cache.get(raw)
    if value is None:
        value = _chunk_env_cache[raw] = _resolve_chunk_env(raw)
    return value


@contextmanager
def stream_chunk(events: int) -> Iterator[None]:
    """Scoped streaming-window override (``0`` disables chunking)."""
    _forced_chunk.append(max(int(events), 0))
    try:
        yield
    finally:
        _forced_chunk.pop()
