"""Injectable time source shared by resilience and observability.

Everything in the harness that reads the clock or sleeps — retry
backoff, watchdog deadlines, span timings, event timestamps — does so
through a :class:`Clock`, so the test suite can drive timing with
:class:`FakeClock` and never block on a real :func:`time.sleep` or
depend on wall time.

(Historically this lived at :mod:`repro.resilience.clock`, which still
re-exports these names; it moved up a level when :mod:`repro.obs`
started sharing it — a leaf module keeps the dependency graph acyclic.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Clock:
    """Monotonic time plus sleep; subclass to fake either."""

    def monotonic(self) -> float:
        """Seconds from an arbitrary, monotonically increasing origin."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (no-op for non-positive values)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


@dataclass
class FakeClock(Clock):
    """Deterministic clock: ``sleep`` advances time instantly.

    ``sleeps`` records every requested delay, which is what the backoff
    tests assert against.
    """

    now: float = 0.0
    sleeps: list[float] = field(default_factory=list)

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        if seconds > 0:
            self.now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        self.now += seconds


#: Shared default instance; policies reference it unless overridden.
SYSTEM_CLOCK = SystemClock()
