"""Fig. 4: instruction count, execution time and IPC across CRF.

The paper's observations this experiment must reproduce (§4.2.1):
runtime tracks instruction count as CRF varies, while IPC hovers
around 2 and moves by at most ~10%.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Series, Table
from ..core.session import Session
from ..core.sweeps import sweep_cells
from .common import make_session, sweep_crfs, sweep_videos

EXPERIMENT_ID = "fig04"
TITLE = "CRF sweep: #instructions (a), time (b), IPC (c)"

PRESET = 4


def run(session: Session | None = None) -> ExperimentResult:
    """Sweep CRF for every video; produce the three panels' series.

    Quarantined cells (permanent failures under a resilient session)
    drop out of their video's series and table rows; the surviving
    grid is reported intact.
    """
    session = session or make_session()
    session.prefetch(
        ("svt-av1", video, crf, PRESET)
        for video in sweep_videos()
        for crf in sweep_crfs()
    )
    rows = []
    series = []
    for video in sweep_videos():
        crfs, reports = sweep_cells(
            sweep_crfs(),
            lambda crf: session.report("svt-av1", video, crf, PRESET),
        )
        insts, times, ipcs = [], [], []
        for crf, report in zip(crfs, reports):
            insts.append(report.instructions)
            times.append(report.time_seconds)
            ipcs.append(report.ipc)
            rows.append(
                (video, crf, report.instructions, report.time_seconds,
                 round(report.ipc, 3))
            )
        xs = tuple(crfs)
        series.append(Series(name=f"insts:{video}", x=xs, y=tuple(insts)))
        series.append(Series(name=f"time:{video}", x=xs, y=tuple(times)))
        series.append(Series(name=f"ipc:{video}", x=xs, y=tuple(ipcs)))
    table = Table(
        title="Fig 4: CRF sweep (speed preset 4)",
        headers=("video", "crf", "instructions", "time_s", "ipc"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table],
        series=series,
    )
