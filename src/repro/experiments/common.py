"""Shared experiment configuration.

``REPRO_FAST=1`` in the environment shrinks every experiment (fewer
videos, frames and CRF points) for smoke-testing; the full
configuration regenerates the paper's artifacts over all fifteen
vbench clips.
"""

from __future__ import annotations

import os

from ..cache import ResultCache
from ..core.session import Session
from ..obs.span import trace_span
from ..parallel.pool import current_parallel, resolve_cache_dir
from ..resilience.executor import current_context
from ..video import vbench

#: The five encoders, in the paper's customary order.
ALL_CODECS: tuple[str, ...] = (
    "x264", "x265", "libvpx-vp9", "libaom", "svt-av1"
)

#: The four encoders of the thread-scalability study (§4.6).
THREAD_CODECS: tuple[str, ...] = ("x264", "x265", "libaom", "svt-av1")


def fast_mode() -> bool:
    """True when REPRO_FAST requests reduced experiment sizes."""
    return os.environ.get("REPRO_FAST", "") not in ("", "0")


def sweep_videos() -> tuple[str, ...]:
    """Videos the per-video sweeps cover."""
    if fast_mode():
        return ("desktop", "game1", "hall")
    return tuple(vbench.names())


def sweep_crfs() -> tuple[int, ...]:
    """CRF grid for the sweeps (AV1 0-63 scale)."""
    if fast_mode():
        return (10, 35, 60)
    return (10, 20, 30, 40, 50, 60)


def sweep_presets() -> tuple[int, ...]:
    """Preset grid for the preset sweep (AV1 0-8 scale)."""
    if fast_mode():
        return (0, 4, 8)
    return tuple(range(9))


def make_session() -> Session:
    """Session sized for the current mode.

    When :func:`repro.experiments.run_experiment` installed an
    execution context (``resume``/``max_retries``/``cell_timeout``),
    its resilience guard is attached so every sweep cell runs under
    the retry/timeout/checkpoint policies.  Likewise an ambient
    :class:`~repro.parallel.pool.ParallelConfig` (or the
    ``REPRO_CACHE_DIR`` environment variable) attaches the
    content-addressed result cache.
    """
    with trace_span("make_session", fast=fast_mode()):
        context = current_context()
        parallel = current_parallel()
        cache_dir = resolve_cache_dir(None)
        return Session(
            num_frames=3 if fast_mode() else None,
            guard=context.guard if context is not None else None,
            cache=(
                ResultCache(
                    cache_dir,
                    salt=parallel.cache_salt if parallel is not None else "",
                )
                if cache_dir
                else None
            ),
        )
