"""Experiment registry: one entry per paper table/figure.

``run_experiment("fig05")`` regenerates the corresponding artifact;
:data:`EXPERIMENTS` maps every id to its runner and is what the
benchmark harness iterates.

``run_experiment`` is also the resilience entry point: the
``resume``/``max_retries``/``cell_timeout``/``ledger_path`` keywords
build an :class:`~repro.resilience.ExecutionPolicy`, install it for
the duration of the run (every sweep cell then executes under retry/
deadline/checkpoint policies), and record what happened — resumed,
retried and quarantined cells — in the result's ``provenance``.

And it is the observability entry point: every run installs an
:class:`~repro.obs.ObsContext` (span tracer, metrics registry,
structured event log) mirroring the resilience context, summarises the
run in ``provenance["telemetry"]``, and exports on request — a Chrome
Trace Event file (``trace_out``), a metrics snapshot
(``metrics_json``) and a span JSONL log (``span_log``, defaulting to a
sibling of the run ledger).
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Callable

from ..core.report import ExperimentResult
from ..errors import (
    ExperimentError,
    ObservabilityError,
    SweepInterruptedError,
)
from ..obs import events as obs_events
from ..obs.context import ObsContext, activate_obs
from ..obs.export import write_chrome_trace, write_span_log
from ..obs.openmetrics import write_openmetrics
from ..obs.telemetry import (
    LEDGER_FILE,
    MANIFEST_FILE,
    METRICS_JSON_FILE,
    METRICS_PROM_FILE,
    SPAN_LOG_FILE,
    TRACE_FILE,
    open_sink,
    telemetry_dir,
)
from ..parallel.pool import (
    ParallelConfig,
    activate_parallel,
    resolve_affinity,
    resolve_cache_dir,
    resolve_run_dir,
    resolve_supervision,
    resolve_workers,
)
from ..parallel.supervise import drain_guard
from ..resilience.executor import (
    ExecutionContext,
    ExecutionPolicy,
    activate,
)
from ..resilience.faults import FaultPlan
from ..resilience.policy import NO_RETRY, RetryPolicy
from . import (
    fig01_runtime,
    fig02_quality,
    fig03_opmix,
    fig04_crf_sweep,
    fig05_topdown,
    fig06_uarch,
    fig07_missrate,
    fig08_10_cbp,
    fig11_preset,
    fig12_15_threads,
    fig16_threads_topdown,
    table1,
    table2,
)

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig01": fig01_runtime.run,
    "fig02": fig02_quality.run,
    "fig03": fig03_opmix.run,
    "fig04": fig04_crf_sweep.run,
    "fig05": fig05_topdown.run,
    "fig06": fig06_uarch.run,
    "fig07": fig07_missrate.run,
    "fig08": lambda **kw: fig08_10_cbp.run(figure="fig08", **kw),
    "fig09": lambda **kw: fig08_10_cbp.run(figure="fig09", **kw),
    "fig10": lambda **kw: fig08_10_cbp.run(figure="fig10", **kw),
    "fig11": fig11_preset.run,
    "fig12": lambda **kw: fig12_15_threads.run(figure="fig12", **kw),
    "fig13": lambda **kw: fig12_15_threads.run(figure="fig13", **kw),
    "fig14": lambda **kw: fig12_15_threads.run(figure="fig14", **kw),
    "fig15": lambda **kw: fig12_15_threads.run(figure="fig15", **kw),
    "fig16": fig16_threads_topdown.run,
}


def experiment_ids() -> list[str]:
    """All registered artifact ids."""
    return list(EXPERIMENTS)


def default_ledger_path(experiment_id: str) -> str:
    """Where a run checkpoints when no explicit path is given.

    ``REPRO_LEDGER_DIR`` overrides the default ``.repro/ledgers``
    directory under the current working directory.
    """
    base = os.environ.get(
        "REPRO_LEDGER_DIR", os.path.join(".repro", "ledgers")
    )
    return os.path.join(base, f"{experiment_id}.jsonl")


_UNEXPECTED_KWARG = re.compile(r"unexpected keyword argument '([^']+)'")


def _call_runner(
    experiment_id: str, runner: Callable[..., ExperimentResult], kwargs: dict
) -> ExperimentResult:
    """Invoke a runner, surfacing bad keywords as ExperimentError."""
    try:
        return runner(**kwargs)
    except TypeError as exc:
        match = _UNEXPECTED_KWARG.search(str(exc))
        if match is None:
            raise
        raise ExperimentError(
            f"experiment {experiment_id!r} does not accept the "
            f"keyword argument {match.group(1)!r}"
        ) from None


def default_span_log_path(ledger_path: str) -> str:
    """Span-log path riding alongside a run ledger."""
    stem, _ = os.path.splitext(ledger_path)
    return f"{stem}.spans.jsonl"


def _write_manifest(
    run_dir: str, manifest: dict, *, replace: bool = False
) -> None:
    """Write/update the run directory's ``run.json`` (best effort).

    The manifest is advisory metadata for ``repro status`` — a run
    must never die because its description could not be written.
    The exit rewrite merges over the on-disk file rather than
    replacing it: other subsystems annotate the manifest mid-run
    (the shm data plane's ``shm_segments`` list) and those keys must
    survive.  The start-of-run write passes ``replace=True`` so a
    reused run directory does not inherit a prior run's ``error`` or
    ``ended_wall``.
    """
    path = os.path.join(run_dir, MANIFEST_FILE)
    merged: dict = {}
    if not replace:
        try:
            with open(path, encoding="utf-8") as handle:
                on_disk = json.load(handle)
            if isinstance(on_disk, dict):
                merged = on_disk
        except (OSError, json.JSONDecodeError, FileNotFoundError):
            pass
    merged.update(manifest)
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass


def run_experiment(
    experiment_id: str,
    *,
    resume: bool = False,
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    ledger_path: str | None = None,
    fault_plan: FaultPlan | None = None,
    trace_out: str | None = None,
    metrics_json: str | None = None,
    metrics_prom: str | None = None,
    span_log: str | None = None,
    run_dir: str | None = None,
    obs: ObsContext | None = None,
    workers: int | str | None = None,
    affinity: bool | None = None,
    cache_dir: str | None = None,
    cache_salt: str = "",
    heartbeat_interval: float | None = None,
    max_worker_restarts: int | None = None,
    validate_claims: bool = False,
    **kwargs,
) -> ExperimentResult:
    """Regenerate one table/figure by id.

    Parameters
    ----------
    resume:
        Replay cells already checkpointed in the ledger instead of
        re-executing them (implies checkpointing).
    max_retries:
        Per-cell retries for transient failures (exponential backoff).
    cell_timeout:
        Per-cell watchdog deadline in seconds.
    ledger_path:
        Where to checkpoint completed cells (JSONL).  Defaults to
        :func:`default_ledger_path` whenever ``resume`` is set.
    fault_plan:
        Explicit fault-injection plan (testing); by default the
        process-wide ``REPRO_FAULT_PLAN`` plan applies.
    trace_out:
        Write the run's spans as a Chrome Trace Event file here
        (loadable in Perfetto / ``about:tracing``).
    metrics_json:
        Write the run's metrics-registry snapshot as JSON here.
    metrics_prom:
        Write the snapshot in OpenMetrics/Prometheus text format here
        (the scrapeable twin of ``metrics_json``).
    span_log:
        Write the raw span/event JSONL log here.  Defaults to a
        ``<experiment>.spans.jsonl`` sibling of the run ledger
        whenever one is in use.
    run_dir:
        Collect every run artifact under one directory: the ledger
        (``ledger.jsonl``), span log (``spans.jsonl``), metrics
        snapshots (``metrics.json``/``metrics.prom``), Chrome trace
        (``trace.json``), a ``run.json`` manifest, per-process
        telemetry streams (``telemetry/``) and the pool's heartbeat
        sidecars (``heartbeats/``) — the artifact contract
        ``repro status`` and ``repro report`` read (see
        OBSERVABILITY.md).  Implies checkpointing; explicit artifact
        paths still win over the run-dir defaults.  Defaults to
        ``REPRO_RUN_DIR``, else off.
    obs:
        An explicit :class:`~repro.obs.ObsContext` to collect into
        (testing — e.g. with a fake clock); one is created per run
        otherwise.
    workers:
        Sweep cells execute over a process pool of this size
        (``"auto"`` = one per core); sweep grids are merged back in
        deterministic
        point order, so results match a serial run.  Defaults to
        ``REPRO_WORKERS``, else serial.
    affinity:
        Pin each pool worker to a distinct core set
        (``os.sched_setaffinity``); a no-op with a structured warning
        on platforms without scheduler affinity.  Pinning never
        changes results — pinned pooled sweeps merge element-for-
        element identical to serial runs.  Defaults to
        ``REPRO_AFFINITY``, else off.
    cache_dir:
        Enable the content-addressed result cache rooted here (see
        :mod:`repro.cache`); cells whose key is already stored are
        served from disk.  Defaults to ``REPRO_CACHE_DIR``, else off.
    cache_salt:
        Extra string folded into every cache key (a campaign id);
        changing it orphans previous entries.
    heartbeat_interval:
        Seconds between pool-worker heartbeats; the supervisor kills a
        worker whose lease misses beats past the stall deadline.
        Defaults to ``REPRO_HEARTBEAT_INTERVAL``, else 0.5.
    max_worker_restarts:
        Pool rebuilds tolerated per sweep before the run fails.
        Defaults to ``REPRO_MAX_WORKER_RESTARTS``, else 12.
    validate_claims:
        Evaluate the paper claims registered for this experiment (see
        :mod:`repro.validate`) over the fresh result and record the
        verdicts in ``provenance["claims"]``.  Evaluation never fails
        the run — failed claims are verdicts, not exceptions.
    kwargs:
        Forwarded to the experiment runner (``session=``, figure
        selection, ...); unknown names raise
        :class:`~repro.errors.ExperimentError`.

    Every run executes under an installed observability context: spans
    cover the session, each sweep cell, each retry attempt and each
    codec pipeline stage, and the result's ``provenance["telemetry"]``
    summarises per-cell durations plus retry/quarantine counters that
    match the run ledger.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(EXPERIMENTS)}"
        ) from None

    run_dir = resolve_run_dir(run_dir)
    if run_dir is not None:
        try:
            os.makedirs(run_dir, exist_ok=True)
        except OSError as exc:
            raise ExperimentError(
                f"cannot create run directory {run_dir!r}: {exc}"
            ) from exc
        if ledger_path is None:
            ledger_path = os.path.join(run_dir, LEDGER_FILE)
        if span_log is None:
            span_log = os.path.join(run_dir, SPAN_LOG_FILE)
        if metrics_json is None:
            metrics_json = os.path.join(run_dir, METRICS_JSON_FILE)
        if metrics_prom is None:
            metrics_prom = os.path.join(run_dir, METRICS_PROM_FILE)
        if trace_out is None:
            trace_out = os.path.join(run_dir, TRACE_FILE)

    resilient = (
        resume
        or max_retries is not None
        or cell_timeout is not None
        or ledger_path is not None
        or fault_plan is not None
    )
    if resume and ledger_path is None:
        ledger_path = default_ledger_path(experiment_id)

    supervision = resolve_supervision(
        heartbeat_interval, max_worker_restarts
    )
    parallel = ParallelConfig(
        workers=workers,
        cache_dir=cache_dir,
        cache_salt=cache_salt,
        heartbeat_interval=heartbeat_interval,
        max_worker_restarts=max_worker_restarts,
        run_dir=run_dir,
        affinity=affinity,
    )
    obs_context = obs if obs is not None else ObsContext()
    manifest: dict = {}
    if run_dir is not None:
        manifest = {
            "schema_version": 1,
            "experiment_id": experiment_id,
            "status": "running",
            "started_wall": time.time(),
            "pid": os.getpid(),
            "workers": resolve_workers(workers),
            "affinity": resolve_affinity(affinity),
        }
        _write_manifest(run_dir, manifest, replace=True)
        obs_context.telemetry = open_sink(
            telemetry_dir(run_dir),
            role="parent",
            obs=obs_context,
            interval=supervision.heartbeat_interval,
        )
    outcome, error_text = "complete", None
    try:
        with activate_obs(obs_context), activate_parallel(parallel), \
                drain_guard():
            with obs_context.tracer.span(
                "session", experiment=experiment_id
            ):
                if not resilient:
                    result = _call_runner(experiment_id, runner, kwargs)
                    context = None
                else:
                    policy = ExecutionPolicy(
                        retry=(
                            RetryPolicy(max_retries=max_retries)
                            if max_retries is not None
                            else NO_RETRY
                        ),
                        cell_timeout=cell_timeout,
                        ledger_path=ledger_path,
                        resume=resume,
                        faults=fault_plan,
                    )
                    context = ExecutionContext(
                        policy, experiment_id=experiment_id
                    )
                    with activate(context):
                        result = _call_runner(experiment_id, runner, kwargs)
            result.provenance["parallel"] = {
                "workers": resolve_workers(workers),
                "affinity": resolve_affinity(affinity),
                "cache_dir": resolve_cache_dir(cache_dir),
                "heartbeat_interval": supervision.heartbeat_interval,
                "max_worker_restarts": supervision.max_worker_restarts,
            }
            if run_dir is not None:
                result.provenance["parallel"]["run_dir"] = run_dir
            if context is not None:
                result.provenance.update(context.guard.provenance())
                quarantined = context.guard.quarantined_keys()
                if quarantined:
                    obs_events.emit(
                        "experiment.quarantined",
                        f"{experiment_id}: {len(quarantined)} cell(s) "
                        f"quarantined",
                        experiment=experiment_id,
                        cells=quarantined,
                    )
            if validate_claims:
                # Imported at call time: repro.validate pulls in this
                # module for its engine, so a top-level import would
                # cycle.
                from ..validate.claims import evaluate_result_claims

                evaluate_result_claims(result)
    except SweepInterruptedError as exc:
        outcome, error_text = "interrupted", str(exc)
        raise
    except BaseException as exc:
        outcome, error_text = "error", f"{type(exc).__name__}: {exc}"
        raise
    finally:
        if obs_context.telemetry is not None:
            obs_context.telemetry.stop(outcome=outcome)
            obs_context.telemetry = None
        if run_dir is not None:
            manifest["status"] = outcome
            manifest["ended_wall"] = time.time()
            if error_text is not None:
                manifest["error"] = error_text
            _write_manifest(run_dir, manifest)
        if outcome != "complete":
            # Best-effort artifact flush: an interrupted or crashed
            # run's spans/metrics are exactly what a post-mortem
            # wants, and a failed export must not mask the original
            # exception.
            _flush_artifacts(
                obs_context,
                span_log=span_log,
                metrics_json=metrics_json,
                metrics_prom=metrics_prom,
                best_effort=True,
            )
    result.provenance["telemetry"] = obs_context.telemetry_summary()

    spans = obs_context.tracer.spans
    if trace_out is not None:
        write_chrome_trace(trace_out, spans)
    if metrics_json is not None:
        _write_metrics_json(metrics_json, obs_context)
    if metrics_prom is not None:
        write_openmetrics(metrics_prom, obs_context.metrics.snapshot())
    if span_log is None and ledger_path is not None:
        span_log = default_span_log_path(ledger_path)
    if span_log is not None:
        write_span_log(span_log, spans, obs_context.events.events)
    return result


def _flush_artifacts(
    obs_context: ObsContext,
    *,
    span_log: str | None,
    metrics_json: str | None,
    metrics_prom: str | None,
    best_effort: bool,
) -> None:
    """Export the span log and metrics snapshots (exception path)."""
    for path, write in (
        (
            span_log,
            lambda p: write_span_log(
                p, obs_context.tracer.spans, obs_context.events.events
            ),
        ),
        (metrics_json, lambda p: _write_metrics_json(p, obs_context)),
        (
            metrics_prom,
            lambda p: write_openmetrics(
                p, obs_context.metrics.snapshot()
            ),
        ),
    ):
        if path is None:
            continue
        try:
            write(path)
        except Exception:  # noqa: BLE001 - must not mask the original
            if not best_effort:
                raise


def _write_metrics_json(path: str, obs_context: ObsContext) -> None:
    """Dump the run's metrics snapshot (``--metrics-json``)."""
    parent = os.path.dirname(os.path.abspath(path))
    try:
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(obs_context.metrics.to_json(indent=2) + "\n")
    except OSError as exc:
        raise ObservabilityError(
            f"cannot write metrics snapshot {path!r}: {exc}"
        ) from exc
