"""Experiment registry: one entry per paper table/figure.

``run_experiment("fig05")`` regenerates the corresponding artifact;
:data:`EXPERIMENTS` maps every id to its runner and is what the
benchmark harness iterates.
"""

from __future__ import annotations

from typing import Callable

from ..core.report import ExperimentResult
from ..errors import ExperimentError
from . import (
    fig01_runtime,
    fig02_quality,
    fig03_opmix,
    fig04_crf_sweep,
    fig05_topdown,
    fig06_uarch,
    fig07_missrate,
    fig08_10_cbp,
    fig11_preset,
    fig12_15_threads,
    fig16_threads_topdown,
    table1,
    table2,
)

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig01": fig01_runtime.run,
    "fig02": fig02_quality.run,
    "fig03": fig03_opmix.run,
    "fig04": fig04_crf_sweep.run,
    "fig05": fig05_topdown.run,
    "fig06": fig06_uarch.run,
    "fig07": fig07_missrate.run,
    "fig08": lambda **kw: fig08_10_cbp.run(figure="fig08", **kw),
    "fig09": lambda **kw: fig08_10_cbp.run(figure="fig09", **kw),
    "fig10": lambda **kw: fig08_10_cbp.run(figure="fig10", **kw),
    "fig11": fig11_preset.run,
    "fig12": lambda **kw: fig12_15_threads.run(figure="fig12", **kw),
    "fig13": lambda **kw: fig12_15_threads.run(figure="fig13", **kw),
    "fig14": lambda **kw: fig12_15_threads.run(figure="fig14", **kw),
    "fig15": lambda **kw: fig12_15_threads.run(figure="fig15", **kw),
    "fig16": fig16_threads_topdown.run,
}


def experiment_ids() -> list[str]:
    """All registered artifact ids."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Regenerate one table/figure by id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)
