"""Table 1: the vbench clip catalog, with measured proxy entropies.

Regenerates the paper's workload table and verifies that the synthetic
proxies' measured frame-difference entropies rank the clips the same
way the published entropy column does.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Table
from ..video import vbench
from ..video.synthetic import measured_entropy

EXPERIMENT_ID = "table1"
TITLE = "vbench workload catalog"


def run(num_frames: int = 3) -> ExperimentResult:
    """Build the catalog table with measured proxy entropies."""
    rows = []
    for entry in vbench.CATALOG:
        video = entry.load(num_frames=num_frames)
        rows.append(
            (
                entry.name,
                entry.resolution,
                entry.fps,
                entry.entropy,
                round(measured_entropy(video), 2),
            )
        )
    table = Table(
        title="Table 1: vbench clips",
        headers=("video", "resolution", "fps", "entropy", "proxy_entropy"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        notes=[
            "proxy_entropy is the frame-difference entropy of our "
            "synthetic stand-in clip; it should rank clips like the "
            "published entropy column."
        ],
    )
