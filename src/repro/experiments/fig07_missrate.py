"""Fig. 7: branch miss rate vs CRF per video.

Despite low branch MPKI, the paper measures a meaningful per-branch
miss *rate* (§4.4) that decreases as CRF rises — the motivation for
the CBP study.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Series, Table
from ..core.session import Session
from .common import make_session, sweep_crfs, sweep_videos

EXPERIMENT_ID = "fig07"
TITLE = "branch miss rate vs CRF"

PRESET = 4


def run(session: Session | None = None) -> ExperimentResult:
    """Branch miss rate per (video, CRF)."""
    session = session or make_session()
    session.prefetch(
        ("svt-av1", video, crf, PRESET)
        for video in sweep_videos()
        for crf in sweep_crfs()
    )
    rows = []
    series = []
    for video in sweep_videos():
        rates = []
        for crf in sweep_crfs():
            report = session.report("svt-av1", video, crf, PRESET)
            rate = report.branch.miss_rate * 100.0
            rows.append((video, crf, round(rate, 3)))
            rates.append(rate)
        series.append(Series(name=video, x=sweep_crfs(), y=tuple(rates)))
    table = Table(
        title="Fig 7: branch miss rate (%)",
        headers=("video", "crf", "miss_rate_pct"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table],
        series=series,
    )
