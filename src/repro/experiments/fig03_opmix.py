"""Fig. 3: instruction-mix evolution across CRF, per video.

For each vbench clip the paper plots the op-mix at increasing CRF
values; the AVX share grows with CRF as scalar decision work drains
away faster than vectorised pixel work.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Series, Table
from ..core.session import Session
from .common import make_session, sweep_crfs, sweep_videos

EXPERIMENT_ID = "fig03"
TITLE = "op-mix per video across CRF"

PRESET = 4
MIX_KEYS = ("branch", "load", "store", "avx", "sse", "other")


def run(session: Session | None = None) -> ExperimentResult:
    """Measure the mix across the CRF grid for every sweep video."""
    session = session or make_session()
    session.prefetch(
        ("svt-av1", video, crf, PRESET)
        for video in sweep_videos()
        for crf in sweep_crfs()
    )
    rows = []
    avx_series = []
    for video in sweep_videos():
        avx = []
        for crf in sweep_crfs():
            report = session.report("svt-av1", video, crf, PRESET)
            mix = report.mix_percent
            rows.append(
                (video, crf) + tuple(round(mix[k], 2) for k in MIX_KEYS)
            )
            avx.append(mix["avx"])
        avx_series.append(Series(name=f"avx:{video}", x=sweep_crfs(), y=tuple(avx)))
    table = Table(
        title="Fig 3: instruction mix (%) per video and CRF",
        headers=("video", "crf") + MIX_KEYS,
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE,
        tables=[table], series=avx_series,
    )
