"""Table 2: SVT-AV1 instruction mix per video (preset 8, CRF 63).

Regenerates the paper's instruction-mix table: total dynamic
instructions plus branch/load/store/AVX/SSE/other percentages for
every vbench clip at the paper's capture point.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Table
from ..core.session import Session
from .common import make_session, sweep_videos

EXPERIMENT_ID = "table2"
TITLE = "SVT-AV1 instruction mix (preset 8, CRF 63)"


def run(session: Session | None = None) -> ExperimentResult:
    """Measure the mix for every sweep video."""
    session = session or make_session()
    session.prefetch(
        ("svt-av1", video, 63, 8) for video in sweep_videos()
    )
    rows = []
    for video in sweep_videos():
        report = session.report("svt-av1", video, crf=63, preset=8)
        mix = report.mix_percent
        rows.append(
            (
                video,
                report.instructions,
                round(mix["branch"], 1),
                round(mix["load"], 1),
                round(mix["store"], 1),
                round(mix["avx"], 1),
                round(mix["sse"], 1),
                round(mix["other"], 1),
            )
        )
    table = Table(
        title="Table 2: instruction mix in % (preset 8, CRF 63)",
        headers=("video", "insts", "branch", "load", "store", "avx",
                 "sse", "other"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table]
    )
