"""Fig. 11: SVT-AV1 preset sweep on game1 (five panels).

Target shapes (§4.5): runtime collapses by orders of magnitude from
preset 0 to preset 8; bitrate stays flat through presets 0-2 and then
rises; PSNR falls only modestly; the top-down / MPKI / stall panels
show no strong preset trend.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Series, Table
from ..core.session import Session
from .common import make_session, sweep_presets

EXPERIMENT_ID = "fig11"
TITLE = "SVT-AV1 preset sweep (game1)"

#: The sweep's fixed quality target (AV1-scale CRF).
CRF = 40


def run(session: Session | None = None, video: str = "game1") -> ExperimentResult:
    """Sweep presets 0-8 at fixed CRF."""
    session = session or make_session()
    presets = sweep_presets()
    session.prefetch(("svt-av1", video, CRF, preset) for preset in presets)
    rows_a = []
    rows_c = []
    times, bitrates, psnrs = [], [], []
    for preset in presets:
        report = session.report("svt-av1", video, CRF, preset)
        td = report.topdown
        stalls = report.stalls_per_ki
        rows_a.append(
            (
                preset, report.time_seconds, round(report.bitrate_kbps, 1),
                round(report.psnr_db, 2),
            )
        )
        rows_c.append(
            (
                preset,
                round(td.retiring, 3), round(td.bad_speculation, 4),
                round(td.frontend, 3), round(td.backend, 3),
                round(report.branch.mpki, 3),
                round(report.cache_mpki["l1d"], 3),
                round(report.cache_mpki["l2"], 3),
                round(stalls["reservation_station"], 2),
                round(stalls["reorder_buffer"], 3),
            )
        )
        times.append(report.time_seconds)
        bitrates.append(report.bitrate_kbps)
        psnrs.append(report.psnr_db)
    table_ab = Table(
        title="Fig 11a/b: runtime, bitrate, PSNR vs preset (CRF fixed)",
        headers=("preset", "time_s", "bitrate_kbps", "psnr_db"),
        rows=tuple(rows_a),
    )
    table_cde = Table(
        title="Fig 11c/d/e: top-down, MPKI, stalls vs preset",
        headers=("preset", "retiring", "bad_spec", "frontend", "backend",
                 "branch_mpki", "l1d_mpki", "l2_mpki", "rs_stalls",
                 "rob_stalls"),
        rows=tuple(rows_c),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE,
        tables=[table_ab, table_cde],
        series=[
            Series(name="time", x=presets, y=tuple(times)),
            Series(name="bitrate", x=presets, y=tuple(bitrates)),
            Series(name="psnr", x=presets, y=tuple(psnrs)),
        ],
    )
