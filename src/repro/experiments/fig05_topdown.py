"""Fig. 5: top-down analysis per video across CRF.

Target shapes (§4.2.2): backend-bound > frontend-bound >
bad-speculation for nearly every clip; backend share rises and
frontend share falls with CRF while their sum stays roughly constant;
retiring sits between 0.4 and 0.6.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Series, Table
from ..core.session import Session
from .common import make_session, sweep_crfs, sweep_videos

EXPERIMENT_ID = "fig05"
TITLE = "top-down analysis per video across CRF"

PRESET = 4


def run(session: Session | None = None) -> ExperimentResult:
    """Top-down shares for every (video, CRF) cell."""
    session = session or make_session()
    session.prefetch(
        ("svt-av1", video, crf, PRESET)
        for video in sweep_videos()
        for crf in sweep_crfs()
    )
    rows = []
    series = []
    for video in sweep_videos():
        backend, frontend = [], []
        for crf in sweep_crfs():
            report = session.report("svt-av1", video, crf, PRESET)
            td = report.topdown
            rows.append(
                (
                    video, crf,
                    round(td.retiring, 3),
                    round(td.bad_speculation, 4),
                    round(td.frontend, 3),
                    round(td.backend, 3),
                )
            )
            backend.append(td.backend)
            frontend.append(td.frontend)
        series.append(
            Series(name=f"backend:{video}", x=sweep_crfs(), y=tuple(backend))
        )
        series.append(
            Series(name=f"frontend:{video}", x=sweep_crfs(), y=tuple(frontend))
        )
    table = Table(
        title="Fig 5: top-down slot shares",
        headers=("video", "crf", "retiring", "bad_spec", "frontend",
                 "backend"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table],
        series=series,
    )
