"""Figs. 8-10: CBP evaluation of Gshare/TAGE on encoder branch traces.

The paper captures per-clip branch traces at three operating points
and replays them through four predictor configurations:

- Fig. 8: traces at speed preset 8, CRF 63;
- Fig. 9: traces at speed preset 4, CRF 10;
- Fig. 10: traces at speed preset 4, CRF 60.

Target shapes: TAGE beats Gshare at equal size; the larger variant of
each scheme beats the smaller.
"""

from __future__ import annotations

from ..cbp import capture_trace, run_championship
from ..core.report import ExperimentResult, Series, Table
from ..video import vbench
from .common import fast_mode, sweep_videos

#: (figure id, preset, CRF on the AV1 scale)
CONFIGS: dict[str, tuple[int, int]] = {
    "fig08": (8, 63),
    "fig09": (4, 10),
    "fig10": (4, 60),
}

PREDICTOR_ORDER = ("gshare-2KB", "gshare-32KB", "tage-8KB", "tage-64KB")


def run(figure: str = "fig08", max_events: int | None = None) -> ExperimentResult:
    """Capture traces and run the championship for one figure."""
    preset, crf = CONFIGS[figure]
    if max_events is None:
        max_events = 8_000 if fast_mode() else 50_000
    num_frames = 3 if fast_mode() else 6
    traces = [
        capture_trace(
            vbench.load(video, num_frames=num_frames),
            crf=crf, preset=preset, fraction=1.0 if preset == 8 else 0.6,
            max_events=max_events,
        )
        for video in sweep_videos()
    ]
    championship = run_championship(traces)
    grouped = championship.by_predictor()

    rows = []
    series = []
    videos = tuple(sweep_videos())
    for predictor in PREDICTOR_ORDER:
        results = grouped[predictor]
        mpkis = []
        for video, result in zip(videos, results):
            rows.append(
                (
                    predictor, video, round(result.mpki, 4),
                    round(result.miss_rate * 100, 2), result.branches,
                )
            )
            mpkis.append(result.mpki)
        series.append(Series(name=predictor, x=videos, y=tuple(mpkis)))
    table = Table(
        title=f"{figure}: simulated branch-predictor MPKI "
              f"(preset {preset}, CRF {crf})",
        headers=("predictor", "video", "mpki", "miss_rate_pct", "branches"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=figure,
        title=f"CBP MPKI, traces at preset {preset} / CRF {crf}",
        tables=[table],
        series=series,
    )
