"""Fig. 16: top-down analysis vs thread count for four encoders.

Target shape (§4.6): for libaom, SVT-AV1 and x264 the top-down profile
is insensitive to the thread count; x265 becomes markedly more
backend-bound as threads are added (its helpers share the master's
working set and spin on row progress).
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Series, Table
from ..core.session import Session
from ..core.sweeps import scale_crf, thread_study
from .common import THREAD_CODECS, fast_mode, make_session

EXPERIMENT_ID = "fig16"
TITLE = "top-down vs thread count (game1)"

AV1_CRF = 50
AV1_PRESET = 6


def run(
    session: Session | None = None,
    video: str = "game1",
    max_threads: int = 8,
) -> ExperimentResult:
    """Per-encoder top-down at 1..max_threads."""
    session = session or make_session()
    num_frames = 4 if fast_mode() else 8
    session.prefetch(
        (
            codec,
            video,
            scale_crf(codec, AV1_CRF),
            AV1_PRESET if codec in ("svt-av1", "libaom") else 5,
        )
        for codec in THREAD_CODECS
    )
    rows = []
    series = []
    for codec in THREAD_CODECS:
        crf = scale_crf(codec, AV1_CRF)
        preset = AV1_PRESET if codec in ("svt-av1", "libaom") else 5
        study = thread_study(
            codec, video, crf, preset,
            max_threads=max_threads, num_frames=num_frames, session=session,
        )
        backend = []
        for threads in sorted(study.topdowns):
            td = study.topdowns[threads]
            rows.append(
                (
                    codec, threads,
                    round(td.retiring, 3), round(td.bad_speculation, 4),
                    round(td.frontend, 3), round(td.backend, 3),
                )
            )
            backend.append(td.backend)
        series.append(
            Series(
                name=f"backend:{codec}",
                x=tuple(sorted(study.topdowns)),
                y=tuple(backend),
            )
        )
    table = Table(
        title="Fig 16: top-down shares vs threads",
        headers=("codec", "threads", "retiring", "bad_spec", "frontend",
                 "backend"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table],
        series=series,
    )
