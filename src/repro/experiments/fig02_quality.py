"""Fig. 2: (a) PSNR BD-rate vs execution time; (b) PSNR vs time.

Fig. 2a plots each encoder's BD-rate (relative to x264) against its
runtime: SVT-AV1 should have the *lowest* BD-rate (best compression)
and the highest runtime.  Fig. 2b sweeps SVT-AV1's CRF at preset 4 on
game1 and shows the diminishing-returns PSNR/runtime curve.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Series, Table
from ..core.session import Session
from ..core.sweeps import comparable_preset, scale_crf
from ..video.bdrate import RatePoint, bd_rate
from .common import ALL_CODECS, make_session, sweep_crfs

EXPERIMENT_ID = "fig02"
TITLE = "BD-rate vs time (a); PSNR vs time (b)"

AV1_PRESET = 4


def _fig02_crfs() -> tuple[int, ...]:
    """BD-rate fitting needs >= 4 rate points; densify small grids."""
    crfs = sweep_crfs()
    if len(crfs) >= 4:
        return crfs
    return (10, 25, 45, 60)


def _rate_curve(
    session: Session, codec: str, video: str
) -> tuple[list[RatePoint], float]:
    """(RD points, mean runtime) over the CRF sweep for one codec."""
    points = []
    times = []
    for crf in _fig02_crfs():
        report = session.report(
            codec, video, scale_crf(codec, crf),
            comparable_preset(codec, AV1_PRESET),
        )
        points.append(
            RatePoint(bitrate_kbps=report.bitrate_kbps, psnr_db=report.psnr_db)
        )
        times.append(report.time_seconds)
    # BD fitting needs strictly increasing PSNR; lift near-ties by an
    # epsilon rather than dropping points (dropping could leave fewer
    # than the 4 points the cubic fit requires).
    points.sort(key=lambda p: p.psnr_db)
    cleaned: list[RatePoint] = []
    for point in points:
        if cleaned and point.psnr_db <= cleaned[-1].psnr_db + 1e-6:
            point = RatePoint(
                bitrate_kbps=point.bitrate_kbps,
                psnr_db=cleaned[-1].psnr_db + 0.01,
            )
        cleaned.append(point)
    return cleaned, sum(times) / len(times)


def run(session: Session | None = None, video: str = "game1") -> ExperimentResult:
    """Compute BD-rate/runtime per codec and the SVT-AV1 RD curve."""
    session = session or make_session()
    session.prefetch(
        [
            (codec, video, scale_crf(codec, crf),
             comparable_preset(codec, AV1_PRESET))
            for codec in ALL_CODECS
            for crf in _fig02_crfs()
        ]
        + [("svt-av1", video, crf, AV1_PRESET) for crf in _fig02_crfs()]
    )
    curves = {}
    mean_time = {}
    for codec in ALL_CODECS:
        curves[codec], mean_time[codec] = _rate_curve(session, codec, video)

    reference = curves["x264"]
    rows = []
    bd_x, bd_y = [], []
    for codec in ALL_CODECS:
        if codec == "x264":
            bd = 0.0
        else:
            bd = bd_rate(reference, curves[codec])
        rows.append((codec, round(bd, 1), mean_time[codec]))
        bd_x.append(mean_time[codec])
        bd_y.append(bd)
    table_a = Table(
        title="Fig 2a: PSNR BD-rate (% vs x264) and mean runtime",
        headers=("codec", "bd_rate_pct", "mean_time_s"),
        rows=tuple(rows),
    )

    # Fig 2b: SVT-AV1 PSNR vs time across the CRF sweep.
    psnr_rows = []
    times, psnrs = [], []
    for crf in _fig02_crfs():
        report = session.report("svt-av1", video, crf, AV1_PRESET)
        psnr_rows.append((crf, report.time_seconds, report.psnr_db))
        times.append(report.time_seconds)
        psnrs.append(report.psnr_db)
    table_b = Table(
        title="Fig 2b: SVT-AV1 PSNR vs execution time (preset 4)",
        headers=("crf", "time_s", "psnr_db"),
        rows=tuple(psnr_rows),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE,
        tables=[table_a, table_b],
        series=[
            Series(name="bdrate_vs_time", x=tuple(bd_x), y=tuple(bd_y)),
            Series(name="psnr_vs_time", x=tuple(times), y=tuple(psnrs)),
        ],
    )
