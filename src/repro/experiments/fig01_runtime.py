"""Fig. 1: execution time of the five encoders across CRF (game1).

The paper's motivating figure: SVT-AV1's modelled runtime sits an
order of magnitude above x264/x265/libvpx-vp9 at every CRF, and every
encoder's runtime falls as CRF rises.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Series, Table
from ..core.session import Session
from ..core.sweeps import comparable_preset, scale_crf
from .common import ALL_CODECS, make_session, sweep_crfs

EXPERIMENT_ID = "fig01"
TITLE = "execution time vs CRF per codec (game1)"

#: The comparison's operating point (AV1-scale preset).
AV1_PRESET = 4


def run(session: Session | None = None, video: str = "game1") -> ExperimentResult:
    """Measure time-vs-CRF curves for all five encoders."""
    session = session or make_session()
    crfs = sweep_crfs()
    session.prefetch(
        (codec, video, scale_crf(codec, crf), comparable_preset(codec, AV1_PRESET))
        for codec in ALL_CODECS
        for crf in crfs
    )
    series = []
    rows = []
    for codec in ALL_CODECS:
        times = []
        for crf in crfs:
            report = session.report(
                codec, video, scale_crf(codec, crf),
                comparable_preset(codec, AV1_PRESET),
            )
            times.append(report.time_seconds)
            rows.append((codec, crf, report.time_seconds,
                         report.instructions, report.ipc))
        series.append(Series(name=codec, x=crfs, y=tuple(times)))
    table = Table(
        title="Fig 1: modelled execution time (s)",
        headers=("codec", "crf", "time_s", "instructions", "ipc"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE,
        tables=[table], series=series,
    )
