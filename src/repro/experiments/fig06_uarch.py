"""Fig. 6: microarchitectural trends across CRF (eight panels).

Panels a-d: branch / L1D / L2 / LLC misses per kilo-instruction;
panels e-h: reservation-station / ROB / load-buffer / store-buffer
stall cycles per kilo-instruction.  Target shapes (§4.3): branch MPKI
*falls* with CRF; L1D/L2 MPKI *rise*; LLC MPKI stays far smaller;
resource stalls rise with CRF except the ROB, which stays small.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Series, Table
from ..core.session import Session
from .common import make_session, sweep_crfs, sweep_videos

EXPERIMENT_ID = "fig06"
TITLE = "uarch trends across CRF: MPKI + resource stalls"

PRESET = 4

PANELS = (
    "branch_mpki", "l1d_mpki", "l2_mpki", "llc_mpki",
    "rs_stalls", "rob_stalls", "ldq_stalls", "stq_stalls",
)


def run(session: Session | None = None) -> ExperimentResult:
    """Collect all eight panels for every (video, CRF) cell."""
    session = session or make_session()
    session.prefetch(
        ("svt-av1", video, crf, PRESET)
        for video in sweep_videos()
        for crf in sweep_crfs()
    )
    rows = []
    series: dict[str, list[float]] = {}
    for video in sweep_videos():
        per_panel: dict[str, list[float]] = {p: [] for p in PANELS}
        for crf in sweep_crfs():
            report = session.report("svt-av1", video, crf, PRESET)
            stalls = report.stalls_per_ki
            values = {
                "branch_mpki": report.branch.mpki,
                "l1d_mpki": report.cache_mpki["l1d"],
                "l2_mpki": report.cache_mpki["l2"],
                "llc_mpki": report.cache_mpki["llc"],
                "rs_stalls": stalls["reservation_station"],
                "rob_stalls": stalls["reorder_buffer"],
                "ldq_stalls": stalls["load_buffer"],
                "stq_stalls": stalls["store_buffer"],
            }
            rows.append(
                (video, crf) + tuple(round(values[p], 4) for p in PANELS)
            )
            for panel in PANELS:
                per_panel[panel].append(values[panel])
        for panel in PANELS:
            series[f"{panel}:{video}"] = per_panel[panel]
    table = Table(
        title="Fig 6: MPKI and stall cycles per KI",
        headers=("video", "crf") + PANELS,
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table],
        series=[
            Series(name=name, x=sweep_crfs(), y=tuple(values))
            for name, values in series.items()
        ],
    )
