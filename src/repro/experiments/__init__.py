"""One module per paper artifact; see :mod:`repro.experiments.registry`."""

from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = ["EXPERIMENTS", "experiment_ids", "run_experiment"]
