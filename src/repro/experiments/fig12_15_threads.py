"""Figs. 12-15: thread scalability of four encoders (game1).

Each of the paper's four figures repeats the 1-8-thread study with a
different x264 operating point (preset/CRF), holding the other three
encoders at comparable settings:

- Fig. 12: x264 preset 0, CRF 51;
- Fig. 13: x264 preset 2, CRF 51;
- Fig. 14: x264 preset 5, CRF 50;
- Fig. 15: x264 preset 5, CRF 30.

Target shapes (§4.6): SVT-AV1 reaches ~6x at 8 threads (the best);
x264 scales best over 1-3 threads, then saturates; libaom tracks
SVT-AV1 early and flattens; x265 never exceeds ~1.3x.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Series, Table
from ..core.session import Session
from ..core.sweeps import scale_crf, thread_study
from .common import THREAD_CODECS, fast_mode, make_session

#: Figure id -> (x264 preset, x264 CRF).
CONFIGS: dict[str, tuple[int, int]] = {
    "fig12": (0, 51),
    "fig13": (2, 51),
    "fig14": (5, 50),
    "fig15": (5, 30),
}

#: Settings for the non-x264 encoders (AV1 scale), per figure.
_COMPANION = {
    "fig12": (8, 63),   # fast presets, high CRF — like x264 p0 (fast end)
    "fig13": (6, 63),
    "fig14": (4, 60),
    "fig15": (4, 37),
}


def run(
    figure: str = "fig14",
    session: Session | None = None,
    video: str = "game1",
    max_threads: int = 8,
) -> ExperimentResult:
    """Run the four-encoder thread study for one figure's config."""
    session = session or make_session()
    x264_preset, x264_crf = CONFIGS[figure]
    av1_preset, av1_crf = _COMPANION[figure]
    num_frames = 4 if fast_mode() else 8

    settings = {
        "x264": (x264_crf, x264_preset),
        "x265": (scale_crf("x265", av1_crf), x264_preset),
        "libaom": (av1_crf, av1_preset),
        "svt-av1": (av1_crf, av1_preset),
    }

    session.prefetch(
        (codec, video) + settings[codec] for codec in THREAD_CODECS
    )
    rows = []
    series = []
    threads_axis = tuple(range(1, max_threads + 1))
    for codec in THREAD_CODECS:
        crf, preset = settings[codec]
        study = thread_study(
            codec, video, crf, preset,
            max_threads=max_threads, num_frames=num_frames,
            session=session,
        )
        speedups = tuple(p.speedup for p in study.curve.points)
        for threads, speedup in zip(threads_axis, speedups):
            rows.append((codec, threads, round(speedup, 3)))
        series.append(Series(name=codec, x=threads_axis, y=speedups))
    table = Table(
        title=f"{figure}: speedup vs threads "
              f"(x264 preset {x264_preset}, CRF {x264_crf})",
        headers=("codec", "threads", "speedup"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id=figure,
        title=f"thread scalability ({figure} configuration)",
        tables=[table],
        series=series,
    )
