"""Instruction classes and trace records.

The paper's Table 2 and Fig. 3 break dynamic instructions into six
classes — branch, load, store, AVX, SSE and "other" — as reported by a
Pin instruction-mix tool.  This module defines that classification plus
the event records the instrumentation layer emits for the downstream
branch-prediction and cache simulators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class InstrClass(enum.Enum):
    """Dynamic-instruction classes used by the paper's mix analysis."""

    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"
    AVX = "avx"
    SSE = "sse"
    OTHER = "other"


#: Fixed ordering used by reports (matches Table 2 column order).
MIX_ORDER: tuple[InstrClass, ...] = (
    InstrClass.BRANCH,
    InstrClass.LOAD,
    InstrClass.STORE,
    InstrClass.AVX,
    InstrClass.SSE,
    InstrClass.OTHER,
)


#: Stable index of each class into the counts vector.
CLASS_INDEX: dict[InstrClass, int] = {
    cls: index for index, cls in enumerate(InstrClass)
}


class InstructionCounts:
    """Accumulated dynamic-instruction counts by class.

    Backed by a dense float vector (indexed by :data:`CLASS_INDEX`) so
    the hot charging path in the instrumenter is a single vectorised
    add.
    """

    __slots__ = ("vec",)

    def __init__(self) -> None:
        self.vec = np.zeros(len(InstrClass), dtype=np.float64)

    @property
    def counts(self) -> dict[InstrClass, float]:
        """Counts as a class-keyed dictionary (reporting convenience)."""
        return {cls: float(self.vec[i]) for cls, i in CLASS_INDEX.items()}

    def add(self, cls: InstrClass, amount: float) -> None:
        """Charge ``amount`` dynamic instructions of class ``cls``."""
        self.vec[CLASS_INDEX[cls]] += amount

    def merge(self, other: "InstructionCounts") -> None:
        """Accumulate another counter set into this one."""
        self.vec += other.vec

    @property
    def total(self) -> float:
        """Total dynamic instructions across all classes."""
        return float(self.vec.sum())

    def fraction(self, cls: InstrClass) -> float:
        """Share of ``cls`` in the total mix (0 when empty)."""
        total = self.total
        return float(self.vec[CLASS_INDEX[cls]]) / total if total else 0.0

    def mix_percent(self) -> dict[str, float]:
        """Mix as percentages keyed by class name, in Table-2 order."""
        return {cls.value: 100.0 * self.fraction(cls) for cls in MIX_ORDER}

    def scaled(self, factor: float) -> "InstructionCounts":
        """Return a copy with every class count multiplied by ``factor``."""
        out = InstructionCounts()
        out.vec = self.vec * factor
        return out


@dataclass(frozen=True)
class BranchEvent:
    """One conditional-branch execution, as Pin would record it.

    Parameters
    ----------
    pc:
        Static branch site address (synthetic but stable per site).
    taken:
        Dynamic outcome.
    target:
        Branch target address (used by BTB models; optional).
    """

    pc: int
    taken: bool
    target: int = 0


@dataclass(frozen=True)
class LoopSummary:
    """Compressed record of a counted-loop branch.

    Vectorised kernels execute counted loops whose backward branch is
    taken ``trip_count - 1`` times and then falls through, once per
    invocation.  Recording each iteration individually is infeasible at
    the instruction volumes the paper measures (1e11+), so the
    instrumenter stores one summary per (site, trip-count) pair and the
    predictor models consume it analytically (see
    :mod:`repro.uarch.branch.loopmodel`).
    """

    pc: int
    trip_count: int
    invocations: int

    @property
    def dynamic_branches(self) -> int:
        """Total dynamic branch instructions the summary represents."""
        return self.trip_count * self.invocations


@dataclass(frozen=True)
class MemoryTouch:
    """A rectangular region of a plane touched by a kernel.

    The cache simulator expands a touch into cache-line accesses using
    the plane's pitch.  ``repeats`` says how many times the kernel
    streamed over the region (re-touches usually hit in cache and the
    simulator observes that naturally).
    """

    base_addr: int
    rows: int
    row_bytes: int
    pitch: int
    is_write: bool
    repeats: int = 1
