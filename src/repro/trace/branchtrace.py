"""CBP-style branch trace container and on-disk format.

The paper feeds branch traces — captured with Pin from a 1-billion-
instruction interval of each encode — to the CBP-2016 simulator.  This
module defines the equivalent artifact for our pipeline: an ordered
sequence of conditional-branch events plus the metadata the harness
needs to report MPKI (the instruction count of the traced window).

Storage is **columnar**: the canonical form is a pair of NumPy arrays
(``pcs`` int64, ``taken`` uint8), which is what the vectorized replay
kernels consume directly (:meth:`BranchTrace.columns`).  The
object-per-event view (``events``) is materialised lazily for callers
that iterate, so the hot path never builds a million ``BranchEvent``
instances.

Traces can be serialised to a compact binary format (8-byte PC + 1-byte
outcome per record, zlib-compressed) so benchmark runs can reuse traces
across predictor configurations without re-encoding.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import TraceError
from .instruction import BranchEvent

_MAGIC = b"RBT1"
_HEADER = struct.Struct("<4sQQd")
_RECORD = struct.Struct("<qB")

#: Packed on-disk record layout, matching ``_RECORD`` byte-for-byte.
_RECORD_DTYPE = np.dtype([("pc", "<i8"), ("taken", "u1")])


class BranchTrace:
    """A bounded window of conditional-branch events.

    Parameters
    ----------
    events:
        Branch events in program order (legacy constructor path; the
        columnar :meth:`from_columns` is preferred on hot paths).
    window_instructions:
        Dynamic instructions executed over the traced window (the
        divisor for MPKI).
    name:
        Workload identifier (e.g. ``"game1@crf63,p8"``).
    """

    __slots__ = ("window_instructions", "name", "_pcs", "_taken", "_events")

    def __init__(
        self,
        events: Sequence[BranchEvent] | None = None,
        window_instructions: float = 0.0,
        name: str = "trace",
    ) -> None:
        if window_instructions <= 0:
            raise TraceError("traced window must cover > 0 instructions")
        self.window_instructions = window_instructions
        self.name = name
        event_list = list(events) if events is not None else []
        self._events: list[BranchEvent] | None = event_list
        self._pcs: np.ndarray | None = None
        self._taken: np.ndarray | None = None

    @classmethod
    def from_columns(
        cls,
        pcs: np.ndarray,
        taken: np.ndarray,
        window_instructions: float,
        name: str = "trace",
    ) -> "BranchTrace":
        """Build a trace directly from columnar arrays (no event objects)."""
        if pcs.shape != taken.shape or pcs.ndim != 1:
            raise TraceError(
                f"column shape mismatch: pcs {pcs.shape} vs taken {taken.shape}"
            )
        trace = cls.__new__(cls)
        if window_instructions <= 0:
            raise TraceError("traced window must cover > 0 instructions")
        trace.window_instructions = window_instructions
        trace.name = name
        trace._pcs = np.ascontiguousarray(pcs, dtype=np.int64)
        trace._taken = np.ascontiguousarray(
            np.asarray(taken) != 0, dtype=np.uint8
        )
        trace._events = None
        return trace

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def columns(self) -> tuple[np.ndarray, np.ndarray]:
        """Columnar view ``(pcs int64, taken uint8)`` in program order."""
        if self._pcs is None:
            events = self._events or []
            self._pcs = np.fromiter(
                (e.pc for e in events), dtype=np.int64, count=len(events)
            )
            self._taken = np.fromiter(
                (1 if e.taken else 0 for e in events),
                dtype=np.uint8,
                count=len(events),
            )
        return self._pcs, self._taken

    @property
    def pcs(self) -> np.ndarray:
        """Branch PCs in program order (int64)."""
        return self.columns()[0]

    @property
    def taken(self) -> np.ndarray:
        """Branch outcomes in program order (uint8, 0/1)."""
        return self.columns()[1]

    @property
    def events(self) -> list[BranchEvent]:
        """Object-per-event view, materialised lazily."""
        if self._events is None:
            pcs, taken = self._pcs, self._taken
            self._events = [
                BranchEvent(pc=pc, taken=bool(t))
                for pc, t in zip(pcs.tolist(), taken.tolist())
            ]
        return self._events

    def __len__(self) -> int:
        if self._pcs is not None:
            return int(self._pcs.size)
        return len(self._events or [])

    def __iter__(self) -> Iterator[BranchEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BranchTrace):
            return NotImplemented
        if (
            self.name != other.name
            or self.window_instructions != other.window_instructions
            or len(self) != len(other)
        ):
            return False
        a_pcs, a_taken = self.columns()
        b_pcs, b_taken = other.columns()
        return bool(
            np.array_equal(a_pcs, b_pcs) and np.array_equal(a_taken, b_taken)
        )

    def iter_chunks(
        self, window: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(pcs, taken)`` column slices of at most ``window``.

        The slices are zero-copy views in program order, covering the
        trace exactly; ``window <= 0`` yields the whole trace as one
        chunk.  This is the unit of streaming replay: kernels that
        carry their predictor/history state across calls consume a
        chunked trace bit-identically to the whole-trace form while
        touching only O(window) memory at a time.
        """
        pcs, taken = self.columns()
        if window <= 0 or pcs.size <= window:
            yield pcs, taken
            return
        for start in range(0, int(pcs.size), window):
            yield pcs[start : start + window], taken[start : start + window]

    @property
    def num_branches(self) -> int:
        """Number of conditional branches in the window."""
        return len(self)

    @property
    def taken_rate(self) -> float:
        """Fraction of branches taken (0 for an empty trace)."""
        _, taken = self.columns()
        if taken.size == 0:
            return 0.0
        return int(taken.sum()) / int(taken.size)

    @property
    def num_static_sites(self) -> int:
        """Number of distinct static branch PCs in the window."""
        return int(np.unique(self.pcs).size)

    def mpki_of(self, mispredicts: int) -> float:
        """Convert a mispredict count into misses/kilo-instruction."""
        return mispredicts / (self.window_instructions / 1000.0)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def dump(self, path: str | os.PathLike[str]) -> None:
        """Write the trace to ``path`` in the compact binary format."""
        pcs, taken = self.columns()
        records = np.empty(pcs.size, dtype=_RECORD_DTYPE)
        records["pc"] = pcs
        records["taken"] = taken
        payload = zlib.compress(records.tobytes(), level=6)
        name_bytes = self.name.encode()
        with open(path, "wb") as fh:
            fh.write(
                _HEADER.pack(
                    _MAGIC,
                    pcs.size,
                    len(name_bytes),
                    self.window_instructions,
                )
            )
            fh.write(name_bytes)
            fh.write(payload)

    @classmethod
    def loads(cls, path: str | os.PathLike[str]) -> "BranchTrace":
        """Read a trace previously written with :meth:`dump`."""
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise TraceError(f"{path}: truncated trace header")
            magic, count, name_len, window = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise TraceError(f"{path}: not a branch trace (magic {magic!r})")
            name = fh.read(name_len).decode()
            raw = zlib.decompress(fh.read())
        if len(raw) != count * _RECORD.size:
            raise TraceError(f"{path}: trace body length mismatch")
        records = np.frombuffer(raw, dtype=_RECORD_DTYPE)
        return cls.from_columns(
            np.array(records["pc"], dtype=np.int64),
            np.array(records["taken"], dtype=np.uint8),
            window_instructions=window,
            name=name,
        )

    @classmethod
    def from_events(
        cls,
        events: Iterable[BranchEvent],
        window_instructions: float,
        name: str = "trace",
    ) -> "BranchTrace":
        """Build a trace from any iterable of events."""
        return cls(list(events), window_instructions, name)
