"""CBP-style branch trace container and on-disk format.

The paper feeds branch traces — captured with Pin from a 1-billion-
instruction interval of each encode — to the CBP-2016 simulator.  This
module defines the equivalent artifact for our pipeline: an ordered
sequence of conditional-branch events plus the metadata the harness
needs to report MPKI (the instruction count of the traced window).

Traces can be serialised to a compact binary format (8-byte PC + 1-byte
outcome per record, zlib-compressed) so benchmark runs can reuse traces
across predictor configurations without re-encoding.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import TraceError
from .instruction import BranchEvent

_MAGIC = b"RBT1"
_HEADER = struct.Struct("<4sQQd")
_RECORD = struct.Struct("<qB")


@dataclass
class BranchTrace:
    """A bounded window of conditional-branch events.

    Parameters
    ----------
    events:
        Branch events in program order.
    window_instructions:
        Dynamic instructions executed over the traced window (the
        divisor for MPKI).
    name:
        Workload identifier (e.g. ``"game1@crf63,p8"``).
    """

    events: list[BranchEvent]
    window_instructions: float
    name: str = "trace"

    def __post_init__(self) -> None:
        if self.window_instructions <= 0:
            raise TraceError("traced window must cover > 0 instructions")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[BranchEvent]:
        return iter(self.events)

    @property
    def num_branches(self) -> int:
        """Number of conditional branches in the window."""
        return len(self.events)

    @property
    def taken_rate(self) -> float:
        """Fraction of branches taken (0 for an empty trace)."""
        if not self.events:
            return 0.0
        return sum(1 for e in self.events if e.taken) / len(self.events)

    @property
    def num_static_sites(self) -> int:
        """Number of distinct static branch PCs in the window."""
        return len({e.pc for e in self.events})

    def mpki_of(self, mispredicts: int) -> float:
        """Convert a mispredict count into misses/kilo-instruction."""
        return mispredicts / (self.window_instructions / 1000.0)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def dump(self, path: str | os.PathLike[str]) -> None:
        """Write the trace to ``path`` in the compact binary format."""
        body = io.BytesIO()
        for event in self.events:
            body.write(_RECORD.pack(event.pc, 1 if event.taken else 0))
        payload = zlib.compress(body.getvalue(), level=6)
        name_bytes = self.name.encode()
        with open(path, "wb") as fh:
            fh.write(
                _HEADER.pack(
                    _MAGIC,
                    len(self.events),
                    len(name_bytes),
                    self.window_instructions,
                )
            )
            fh.write(name_bytes)
            fh.write(payload)

    @classmethod
    def loads(cls, path: str | os.PathLike[str]) -> "BranchTrace":
        """Read a trace previously written with :meth:`dump`."""
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise TraceError(f"{path}: truncated trace header")
            magic, count, name_len, window = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise TraceError(f"{path}: not a branch trace (magic {magic!r})")
            name = fh.read(name_len).decode()
            raw = zlib.decompress(fh.read())
        if len(raw) != count * _RECORD.size:
            raise TraceError(f"{path}: trace body length mismatch")
        events = [
            BranchEvent(pc=pc, taken=bool(taken))
            for pc, taken in _RECORD.iter_unpack(raw)
        ]
        return cls(events=events, window_instructions=window, name=name)

    @classmethod
    def from_events(
        cls,
        events: Iterable[BranchEvent],
        window_instructions: float,
        name: str = "trace",
    ) -> "BranchTrace":
        """Build a trace from any iterable of events."""
        return cls(list(events), window_instructions, name)
