"""The instrumentation layer: this reproduction's stand-in for Intel Pin.

A single :class:`Instrumenter` object is threaded through an encode.
Every codec kernel reports its work here, and the instrumenter builds
the three artifacts the paper's toolchain extracts from a real binary:

1. **Dynamic instruction counts by class** (Pin's instruction-mix tool
   → Table 2 / Fig. 3), charged via the kernel cost model.
2. **Branch activity** (Pin's trace tool → CBP figures): conditional
   *decision* branches are recorded event-by-event with stable synthetic
   PCs; *counted-loop* branches inside vectorised kernels are recorded
   as compressed :class:`~repro.trace.instruction.LoopSummary` entries
   (recording 1e11 individual iterations is as infeasible for us as it
   was for the paper's authors, who also traced a bounded interval).
3. **Memory touches** (→ cache simulation): rectangular plane regions,
   expanded to cache-line streams by the cache driver.

Addresses are *native-footprint scaled*: the synthetic proxy videos are
smaller than the vbench originals, so registered planes advertise the
original pitch/height and proxy coordinates are scaled up when touches
are emitted.  The cache hierarchy therefore sees the data footprint of
the real workload (e.g. a 1080p reference frame does not fit in L2 but
does in a 30 MB LLC), which is what drives the paper's Fig. 6 trends.

The instrumenter also keeps a per-function flat profile (calls and
instructions), which :mod:`repro.profiling.gprof` formats — the role
GNU gprof plays in the paper.
"""

from __future__ import annotations

import hashlib
import zlib
from array import array
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .. import kernels
from ..errors import TraceError
from .costmodel import kernel_cost
from .instruction import (
    CLASS_INDEX,
    BranchEvent,
    InstrClass,
    InstructionCounts,
    LoopSummary,
    MemoryTouch,
)

#: Cache-line size assumed by address generation.
LINE_BYTES = 64

#: A branch-stream consumer: receives one flushed chunk as columnar
#: ``(pcs int64, taken int8)`` arrays in program order.
BranchSink = Callable[[np.ndarray, np.ndarray], None]

#: A touch-stream consumer: receives one flushed chunk as the six
#: columnar touch arrays ``(base, rows, row_bytes, pitch, write,
#: repeats)`` in program order.
TouchSink = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    None,
]

#: Process-wide kernel-cost lookup cache (costs are immutable).
_KERNEL_CACHE: dict = {}

_BRANCH_INDEX = CLASS_INDEX[InstrClass.BRANCH]
_OTHER_INDEX = CLASS_INDEX[InstrClass.OTHER]


def site_pc(name: str) -> int:
    """Map a stable site name to a synthetic 48-bit code address.

    Real branch PCs cluster within functions; we mimic that by hashing
    the site's function prefix (up to the last dot) to a 4 KB-aligned
    "function base" and the full name to a small offset within it.
    Predictor index/tag behaviour then sees realistic locality.
    """
    prefix, _, _ = name.rpartition(".")
    base = int.from_bytes(
        hashlib.blake2b(prefix.encode(), digest_size=6).digest(), "little"
    ) & ~0xFFF
    offset = (zlib.crc32(name.encode()) & 0x3FF) << 2
    return base | offset


@dataclass
class FunctionProfile:
    """Flat-profile row: call count and instructions attributed."""

    calls: int = 0
    instructions: float = 0.0


class PlaneHandle:
    """Address-space registration of one pixel plane.

    Parameters
    ----------
    base:
        Base virtual address (line-aligned).
    pitch:
        Native row stride in bytes.
    scale_h, scale_w:
        Proxy-to-native coordinate scale factors.
    """

    __slots__ = ("base", "pitch", "scale_h", "scale_w")

    def __init__(self, base: int, pitch: int, scale_h: float, scale_w: float) -> None:
        self.base = base
        self.pitch = pitch
        self.scale_h = scale_h
        self.scale_w = scale_w


class Instrumenter:
    """Collects instruction, branch, memory and profile data for one run.

    Parameters
    ----------
    record_branches:
        When false, decision-branch events are counted but not buffered
        (cheaper; used by bulk sweeps that only need counts).
    record_touches:
        When false, memory touches are aggregated into byte counters
        only.
    """

    def __init__(
        self,
        record_branches: bool = True,
        record_touches: bool = True,
    ) -> None:
        self._counts = InstructionCounts()
        self.record_branches = record_branches
        self.record_touches = record_touches

        # Pending (lazily folded) kernel charges.  Per-kernel unit
        # totals are sums of dyadic rationals (pixel counts and
        # quarter/half multiples thereof), so every partial sum is
        # exact and the fold order cannot change the result; the dense
        # class-vector update then happens once per distinct kernel at
        # the next counts read instead of once per charge.
        self._pending_kernels: dict[str, float] = {}
        self._pending_fn: dict[str, dict[str, float]] = {}
        self._fn_pending_top: dict[str, float] | None = None
        self._counted_decisions = 0

        # Branch event stream (columnar for memory efficiency).
        self._branch_pcs = array("q")
        self._branch_taken = array("b")
        self.decision_branches = 0
        self.decision_taken = 0

        # Streaming sink mode: registered consumers receive bounded
        # chunks and the buffers are surrendered at each flush, so peak
        # capture memory is O(window) instead of O(events).  Once any
        # events have been flushed the whole-stream accessors raise —
        # the instrumenter no longer holds the complete stream.
        self._branch_sinks: list[BranchSink] = []
        self._touch_sinks: list[TouchSink] = []
        self._branch_window = 0
        self._touch_window = 0
        self._branches_flushed = 0
        self._touches_flushed = 0

        # Cached object views (satellite of the columnar design: the
        # deprecated per-event accessors used to rebuild full Python
        # object lists on every read).
        self._branch_events_cache: list[BranchEvent] | None = None
        self._touches_cache: list[MemoryTouch] | None = None
        self._loop_summaries_cache: list[LoopSummary] | None = None

        # Compressed loop-branch summaries keyed by (pc, trip_count).
        self._loops: dict[tuple[int, int], int] = {}

        # Memory touch stream (columnar).
        self._touch_base = array("q")
        self._touch_rows = array("q")
        self._touch_rowbytes = array("q")
        self._touch_pitch = array("q")
        self._touch_write = array("b")
        self._touch_repeats = array("q")
        self.bytes_read = 0
        self.bytes_written = 0

        # Flat profile.
        self._functions: dict[str, FunctionProfile] = {}
        self._stack: list[str] = []

        # Address space.
        self._next_base = 0x10_0000  # skip a guard region
        self._site_cache: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Address space
    # ------------------------------------------------------------------
    def register_plane(
        self,
        proxy_width: int,
        scale_h: float = 1.0,
        scale_w: float = 1.0,
    ) -> PlaneHandle:
        """Allocate address space for a plane and return its handle.

        ``proxy_width`` is the proxy plane's width in samples; the
        native pitch is ``proxy_width * scale_w`` rounded up to a whole
        number of cache lines.
        """
        if proxy_width <= 0:
            raise TraceError(f"plane width must be positive, got {proxy_width}")
        pitch = int(proxy_width * scale_w + LINE_BYTES - 1) // LINE_BYTES * LINE_BYTES
        handle = PlaneHandle(self._next_base, pitch, scale_h, scale_w)
        # Reserve generous native-height space; proxy heights stay <256.
        self._next_base += pitch * max(1, int(256 * scale_h) + 8)
        return handle

    # ------------------------------------------------------------------
    # Instruction charging
    # ------------------------------------------------------------------
    def kernel(self, name: str, units: float) -> None:
        """Charge ``units`` of work on kernel ``name``.

        Charges are accumulated as per-kernel unit totals and folded
        into the class vector lazily (see :meth:`_flush_counts`); the
        hot path is two dictionary accumulations.
        """
        if units < 0:
            raise TraceError(f"negative work units for kernel {name!r}")
        pend = self._pending_kernels
        if name in pend:
            pend[name] += units
        else:
            if name not in _KERNEL_CACHE:
                _KERNEL_CACHE[name] = kernel_cost(name)
            pend[name] = units
        fpend = self._fn_pending_top
        if fpend is not None:
            if name in fpend:
                fpend[name] += units
            else:
                fpend[name] = units

    def _flush_counts(self) -> None:
        """Fold pending kernel and branch charges into the class vector."""
        vec = self._counts.vec
        pend = self._pending_kernels
        if pend:
            for name, units in pend.items():
                vec += _KERNEL_CACHE[name].vector * units
            pend.clear()
        delta = self.decision_branches - self._counted_decisions
        if delta:
            vec[_BRANCH_INDEX] += delta
            vec[_OTHER_INDEX] += delta  # the compares feeding the branches
            self._counted_decisions = self.decision_branches

    def _flush_functions(self) -> None:
        """Fold pending per-function kernel units into the flat profile."""
        for fn, fpend in self._pending_fn.items():
            if fpend:
                self._functions[fn].instructions += sum(
                    _KERNEL_CACHE[name].per_unit_total * units
                    for name, units in fpend.items()
                )
                fpend.clear()

    @property
    def counts(self) -> InstructionCounts:
        """Dynamic-instruction counts by class (flushes pending charges)."""
        self._flush_counts()
        return self._counts

    @property
    def functions(self) -> dict[str, FunctionProfile]:
        """Flat profile by function name (flushes pending attribution)."""
        self._flush_functions()
        return self._functions

    @contextmanager
    def function(self, name: str) -> Iterator[None]:
        """Attribute kernel charges inside the block to ``name``."""
        profile = self._functions.setdefault(name, FunctionProfile())
        profile.calls += 1
        self._stack.append(name)
        parent_pending = self._fn_pending_top
        self._fn_pending_top = self._pending_fn.setdefault(name, {})
        try:
            yield
        finally:
            self._stack.pop()
            self._fn_pending_top = parent_pending

    # ------------------------------------------------------------------
    # Streaming sinks
    # ------------------------------------------------------------------
    def register_branch_sink(
        self, sink: BranchSink, window: int | None = None
    ) -> None:
        """Stream branch chunks to ``sink(pcs, taken)`` as they fill.

        ``window`` is the flush threshold in events; ``None`` resolves
        :func:`repro.kernels.stream_chunk_events` (``REPRO_REPLAY_CHUNK``)
        at registration time, and ``0`` flushes only at
        :meth:`flush_stream`.  Registering a sink switches the branch
        stream to streaming mode: buffers are surrendered at each
        flush, so :meth:`branch_events` / :meth:`branch_arrays` raise
        once anything has been flushed.
        """
        if not self.record_branches:
            raise TraceError(
                "cannot register a branch sink with record_branches=False: "
                "no branch events are buffered to stream"
            )
        if self._branches_flushed:
            raise TraceError(
                "cannot register a branch sink after events were flushed; "
                "earlier chunks would be missing from the new consumer"
            )
        self._branch_sinks.append(sink)
        self._branch_window = (
            kernels.stream_chunk_events() if window is None else max(int(window), 0)
        )

    def register_touch_sink(
        self, sink: TouchSink, window: int | None = None
    ) -> None:
        """Stream touch chunks to ``sink(*columns)`` as they fill.

        Same contract as :meth:`register_branch_sink`, over the six
        columnar touch arrays.
        """
        if not self.record_touches:
            raise TraceError(
                "cannot register a touch sink with record_touches=False: "
                "no memory touches are buffered to stream"
            )
        if self._touches_flushed:
            raise TraceError(
                "cannot register a touch sink after touches were flushed; "
                "earlier chunks would be missing from the new consumer"
            )
        self._touch_sinks.append(sink)
        self._touch_window = (
            kernels.stream_chunk_events() if window is None else max(int(window), 0)
        )

    @property
    def streaming(self) -> bool:
        """True when any streaming sink is registered."""
        return bool(self._branch_sinks or self._touch_sinks)

    def _flush_branch_chunk(self) -> None:
        count = len(self._branch_pcs)
        if not count:
            return
        pcs = np.frombuffer(self._branch_pcs, dtype=np.int64).copy()
        taken = np.frombuffer(self._branch_taken, dtype=np.int8).copy()
        self._branch_pcs = array("q")
        self._branch_taken = array("b")
        self._branches_flushed += count
        self._branch_events_cache = None
        for sink in self._branch_sinks:
            sink(pcs, taken)

    def _flush_touch_chunk(self) -> None:
        count = len(self._touch_base)
        if not count:
            return
        columns = (
            np.frombuffer(self._touch_base, dtype=np.int64).copy(),
            np.frombuffer(self._touch_rows, dtype=np.int64).copy(),
            np.frombuffer(self._touch_rowbytes, dtype=np.int64).copy(),
            np.frombuffer(self._touch_pitch, dtype=np.int64).copy(),
            np.frombuffer(self._touch_write, dtype=np.int8).copy(),
            np.frombuffer(self._touch_repeats, dtype=np.int64).copy(),
        )
        self._touch_base = array("q")
        self._touch_rows = array("q")
        self._touch_rowbytes = array("q")
        self._touch_pitch = array("q")
        self._touch_write = array("b")
        self._touch_repeats = array("q")
        self._touches_flushed += count
        self._touches_cache = None
        for sink in self._touch_sinks:
            sink(*columns)

    def flush_stream(self) -> None:
        """Flush any buffered partial chunks to the registered sinks.

        Call once at end of capture; flushing with no sinks registered
        is a no-op, so callers need not track the mode themselves.
        """
        if self._branch_sinks:
            self._flush_branch_chunk()
        if self._touch_sinks:
            self._flush_touch_chunk()

    # ------------------------------------------------------------------
    # Branch events
    # ------------------------------------------------------------------
    def site(self, name: str) -> int:
        """Intern a branch-site name, returning its synthetic PC."""
        pc = self._site_cache.get(name)
        if pc is None:
            pc = site_pc(name)
            self._site_cache[name] = pc
        return pc

    def branch(self, pc: int, taken: bool) -> None:
        """Record one decision-branch execution.

        Charges one branch instruction in addition to any kernel mix,
        since decision branches are the data-dependent ones on top of
        the bulk kernel code.  The class-vector update is deferred: the
        integer decision counter is folded in at the next counts read
        (integer adds are exact, so deferral cannot change the totals).
        """
        self.decision_branches += 1
        if taken:
            self.decision_taken += 1
        if self.record_branches:
            self._branch_pcs.append(pc)
            self._branch_taken.append(1 if taken else 0)
            if (
                self._branch_window
                and len(self._branch_pcs) >= self._branch_window
            ):
                self._flush_branch_chunk()

    def loop(self, pc: int, trip_count: int, invocations: int = 1) -> None:
        """Record a counted loop's backward branch in compressed form."""
        if trip_count < 1 or invocations < 1:
            raise TraceError("loop trip count and invocations must be >= 1")
        key = (pc, trip_count)
        self._loops[key] = self._loops.get(key, 0) + invocations
        self._loop_summaries_cache = None

    @property
    def loop_summaries(self) -> list[LoopSummary]:
        """All compressed loop-branch records (cached between loops).

        The view is rebuilt only after :meth:`loop` or :meth:`merge`
        invalidates it — repeated reads (the perf-counter pass reads it
        per collect) return the same list instead of rebuilding one
        object per record every time.
        """
        cache = self._loop_summaries_cache
        if cache is None:
            cache = [
                LoopSummary(pc=pc, trip_count=trip, invocations=n)
                for (pc, trip), n in self._loops.items()
            ]
            self._loop_summaries_cache = cache
        return cache

    @property
    def loop_branch_instructions(self) -> int:
        """Dynamic branch instructions represented by loop summaries.

        These are already included in kernel mixes as the kernels'
        branch share; the summaries exist for predictor modelling, so
        this count is informational.
        """
        return sum(
            trip * n for (_, trip), n in self._loops.items()
        )

    def _require_whole_branch_stream(self) -> None:
        if self._branches_flushed:
            raise TraceError(
                "branch stream was flushed to registered sinks; the "
                "instrumenter no longer holds the whole stream — consume "
                "it through a branch sink instead"
            )

    def branch_events(self) -> list[BranchEvent]:
        """Decision-branch events in program order.

        .. deprecated:: prefer :meth:`branch_arrays` (or a registered
           branch sink) — the columnar form is what every replay kernel
           consumes.  This per-event object view is kept for existing
           callers and built at most once per stream state.
        """
        self._require_whole_branch_stream()
        cache = self._branch_events_cache
        if cache is None or len(cache) != len(self._branch_pcs):
            cache = [
                BranchEvent(pc=pc, taken=bool(taken))
                for pc, taken in zip(self._branch_pcs, self._branch_taken)
            ]
            self._branch_events_cache = cache
        return cache

    def branch_arrays(self) -> tuple[array, array]:
        """Raw columnar branch buffers ``(pcs, taken)`` (zero-copy)."""
        self._require_whole_branch_stream()
        return self._branch_pcs, self._branch_taken

    # ------------------------------------------------------------------
    # Memory touches
    # ------------------------------------------------------------------
    def touch(
        self,
        plane: PlaneHandle,
        row: int,
        rows: int,
        col: int,
        cols: int,
        write: bool = False,
        repeats: int = 1,
    ) -> None:
        """Record a kernel's access to a rectangular plane region.

        Proxy coordinates are scaled to the native footprint here, so
        the cache simulator sees original-resolution addresses.
        """
        if rows <= 0 or cols <= 0:
            raise TraceError("touch extent must be positive")
        native_row = int(row * plane.scale_h)
        native_col = int(col * plane.scale_w)
        native_rows = max(1, int(rows * plane.scale_h))
        native_cols = max(1, int(cols * plane.scale_w))
        base = plane.base + native_row * plane.pitch + native_col
        nbytes = native_rows * native_cols * repeats
        if write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes
        if not self.record_touches:
            return
        self._touch_base.append(base)
        self._touch_rows.append(native_rows)
        self._touch_rowbytes.append(native_cols)
        self._touch_pitch.append(plane.pitch)
        self._touch_write.append(1 if write else 0)
        self._touch_repeats.append(repeats)
        if self._touch_window and len(self._touch_base) >= self._touch_window:
            self._flush_touch_chunk()

    def _require_whole_touch_stream(self) -> None:
        if self._touches_flushed:
            raise TraceError(
                "touch stream was flushed to registered sinks; the "
                "instrumenter no longer holds the whole stream — consume "
                "it through a touch sink instead"
            )

    def touches(self) -> list[MemoryTouch]:
        """Memory touches in program order.

        .. deprecated:: prefer :meth:`touch_arrays` (or a registered
           touch sink) — the cache driver consumes the columns
           directly.  This per-event object view is kept for existing
           callers and built at most once per stream state.
        """
        self._require_whole_touch_stream()
        cache = self._touches_cache
        if cache is not None and len(cache) == len(self._touch_base):
            return cache
        cache = [
            MemoryTouch(
                base_addr=base,
                rows=rows,
                row_bytes=row_bytes,
                pitch=pitch,
                is_write=bool(write),
                repeats=repeats,
            )
            for base, rows, row_bytes, pitch, write, repeats in zip(
                self._touch_base,
                self._touch_rows,
                self._touch_rowbytes,
                self._touch_pitch,
                self._touch_write,
                self._touch_repeats,
            )
        ]
        self._touches_cache = cache
        return cache

    def touch_arrays(self) -> tuple[array, array, array, array, array, array]:
        """Raw columnar touch buffers (zero-copy)."""
        self._require_whole_touch_stream()
        return (
            self._touch_base,
            self._touch_rows,
            self._touch_rowbytes,
            self._touch_pitch,
            self._touch_write,
            self._touch_repeats,
        )

    # ------------------------------------------------------------------
    # Summary properties
    # ------------------------------------------------------------------
    @property
    def total_instructions(self) -> float:
        """Total dynamic instructions charged so far."""
        self._flush_counts()
        return self._counts.total

    def merge(self, other: "Instrumenter") -> None:
        """Fold another instrumenter's data into this one.

        Used by the thread-scalability model, where per-task
        instrumenters are merged into a whole-encode view.
        """
        if self.streaming or other.streaming:
            raise TraceError(
                "cannot merge streaming instrumenters: flushed chunks "
                "are owned by their sinks, not the instrumenter"
            )
        self._branch_events_cache = None
        self._touches_cache = None
        self._loop_summaries_cache = None
        self.counts.merge(other.counts)
        self.decision_branches += other.decision_branches
        self.decision_taken += other.decision_taken
        self._branch_pcs.extend(other._branch_pcs)
        self._branch_taken.extend(other._branch_taken)
        for key, n in other._loops.items():
            self._loops[key] = self._loops.get(key, 0) + n
        self._touch_base.extend(other._touch_base)
        self._touch_rows.extend(other._touch_rows)
        self._touch_rowbytes.extend(other._touch_rowbytes)
        self._touch_pitch.extend(other._touch_pitch)
        self._touch_write.extend(other._touch_write)
        self._touch_repeats.extend(other._touch_repeats)
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self._flush_functions()
        for name, prof in other.functions.items():
            mine = self._functions.setdefault(name, FunctionProfile())
            mine.calls += prof.calls
            mine.instructions += prof.instructions
