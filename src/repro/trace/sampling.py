"""Trace-interval extraction (the paper's §4.4 sampling methodology).

The paper extracts each branch trace from "an interval of 1 billion
instructions roughly halfway through the encoding run".  Our encodes
charge far fewer synthetic instructions, so the interval is expressed
as a *fraction* of the run centred on its midpoint, with the window's
instruction count scaled accordingly for MPKI reporting.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from .branchtrace import BranchTrace
from .instrument import Instrumenter


def extract_midpoint_window(
    instrumenter: Instrumenter,
    fraction: float = 0.5,
    name: str = "trace",
    max_events: int | None = None,
) -> BranchTrace:
    """Cut the middle ``fraction`` of an encode's decision branches.

    Parameters
    ----------
    instrumenter:
        A finished run with ``record_branches=True``.
    fraction:
        Share of the branch stream to keep, centred on the midpoint
        (0 < fraction <= 1).
    name:
        Name for the resulting trace.
    max_events:
        Optional hard cap; when set, the window is further narrowed
        (still centred) to at most this many events.

    The traced window's instruction count is taken as the same fraction
    of the run's total instructions, mirroring how a fixed-length Pin
    interval relates to the whole run.
    """
    if not 0.0 < fraction <= 1.0:
        raise TraceError(f"window fraction {fraction} outside (0, 1]")
    pcs, taken = instrumenter.branch_arrays()
    total = len(pcs)
    if total == 0:
        raise TraceError(
            "no decision branches recorded; was record_branches enabled?"
        )
    keep = max(1, int(total * fraction))
    if max_events is not None:
        keep = min(keep, max_events)
    start = (total - keep) // 2
    window_fraction = keep / total
    # Columnar cut: the recorder's buffers are viewed as ndarrays and
    # sliced directly — no per-event object is materialised on this
    # path (the replay kernels consume the columns as-is).
    pcs_col = np.frombuffer(pcs, dtype=np.int64)[start : start + keep]
    taken_col = np.frombuffer(taken, dtype=np.int8)[start : start + keep]
    window_instructions = instrumenter.total_instructions * window_fraction
    return BranchTrace.from_columns(
        np.array(pcs_col, dtype=np.int64),
        np.array(taken_col, dtype=np.uint8),
        window_instructions=max(window_instructions, 1.0),
        name=name,
    )
