"""Trace-interval extraction (the paper's §4.4 sampling methodology).

The paper extracts each branch trace from "an interval of 1 billion
instructions roughly halfway through the encoding run".  Our encodes
charge far fewer synthetic instructions, so the interval is expressed
as a *fraction* of the run centred on its midpoint, with the window's
instruction count scaled accordingly for MPKI reporting.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from .branchtrace import BranchTrace
from .instrument import Instrumenter


def extract_midpoint_window(
    instrumenter: Instrumenter,
    fraction: float = 0.5,
    name: str = "trace",
    max_events: int | None = None,
) -> BranchTrace:
    """Cut the middle ``fraction`` of an encode's decision branches.

    Parameters
    ----------
    instrumenter:
        A finished run with ``record_branches=True``.
    fraction:
        Share of the branch stream to keep, centred on the midpoint
        (0 < fraction <= 1).
    name:
        Name for the resulting trace.
    max_events:
        Optional hard cap; when set, the window is further narrowed
        (still centred) to at most this many events.

    The traced window's instruction count is taken as the same fraction
    of the run's total instructions, mirroring how a fixed-length Pin
    interval relates to the whole run.
    """
    if not 0.0 < fraction <= 1.0:
        raise TraceError(f"window fraction {fraction} outside (0, 1]")
    pcs, taken = instrumenter.branch_arrays()
    total = len(pcs)
    if total == 0:
        raise TraceError(
            "no decision branches recorded; was record_branches enabled?"
        )
    keep = max(1, int(total * fraction))
    if max_events is not None:
        keep = min(keep, max_events)
    start = (total - keep) // 2
    window_fraction = keep / total
    # Columnar cut: the recorder's buffers are viewed as ndarrays and
    # sliced directly — no per-event object is materialised on this
    # path (the replay kernels consume the columns as-is).
    pcs_col = np.frombuffer(pcs, dtype=np.int64)[start : start + keep]
    taken_col = np.frombuffer(taken, dtype=np.int8)[start : start + keep]
    window_instructions = instrumenter.total_instructions * window_fraction
    return BranchTrace.from_columns(
        np.array(pcs_col, dtype=np.int64),
        np.array(taken_col, dtype=np.uint8),
        window_instructions=max(window_instructions, 1.0),
        name=name,
    )


class MidpointReservoir:
    """Streaming collector of the centred midpoint branch window.

    A branch sink (see
    :meth:`~repro.trace.instrument.Instrumenter.register_branch_sink`)
    that retains just enough of the stream to cut the same window
    :func:`extract_midpoint_window` would cut from the whole buffered
    stream — bit-identical columns and window arithmetic — while
    keeping peak memory bounded by the stream's *midpoint*, not its
    length.

    The discard rule: after ``t`` events the final window's start index
    is at least ``(t - max_window) // 2`` whatever the final total
    turns out to be (``keep <= max_window`` always, and the bound is
    monotone in ``t``), so events below it can never be in the window
    and whole leading chunks are dropped as soon as they fall under it.
    Retained memory is therefore ~``(total + max_window) / 2`` events
    in the worst case — the exact-centred window is a function of the
    final total, so no online scheme can retain less than the midpoint
    — and the touch side of a streaming capture, which is fully
    O(window), dominates the peak (DESIGN.md "Streaming capture").
    """

    def __init__(self, max_window: int) -> None:
        if max_window < 1:
            raise TraceError("reservoir window must be >= 1")
        self.max_window = max_window
        self._pcs_chunks: list[np.ndarray] = []
        self._taken_chunks: list[np.ndarray] = []
        self._total = 0
        self._dropped = 0

    @property
    def total_events(self) -> int:
        """Events observed so far (dropped ones included)."""
        return self._total

    @property
    def retained_events(self) -> int:
        """Events currently held."""
        return self._total - self._dropped

    def __call__(self, pcs: np.ndarray, taken: np.ndarray) -> None:
        """Consume one flushed chunk (the branch-sink signature)."""
        if pcs.size == 0:
            return
        self._pcs_chunks.append(pcs)
        self._taken_chunks.append(taken)
        self._total += int(pcs.size)
        bound = (self._total - self.max_window) // 2
        while (
            self._pcs_chunks
            and self._dropped + self._pcs_chunks[0].size <= bound
        ):
            self._dropped += int(self._pcs_chunks[0].size)
            del self._pcs_chunks[0]
            del self._taken_chunks[0]

    def extract(
        self,
        total_instructions: float,
        fraction: float = 0.5,
        name: str = "trace",
        max_events: int | None = None,
    ) -> BranchTrace:
        """Cut the centred window, mirroring :func:`extract_midpoint_window`.

        ``total_instructions`` is the finished run's instruction total
        (the reservoir never sees instruction charges).  The window
        arithmetic — keep count, start index, window-instruction
        scaling — is the buffered function's, applied to the retained
        slice, so the resulting trace is bit-identical.  Asking for a
        window wider than ``max_window`` raises: those events were
        (correctly) discarded.
        """
        if not 0.0 < fraction <= 1.0:
            raise TraceError(f"window fraction {fraction} outside (0, 1]")
        total = self._total
        if total == 0:
            raise TraceError(
                "no decision branches reached the reservoir; was "
                "record_branches enabled and the stream flushed?"
            )
        keep = max(1, int(total * fraction))
        if max_events is not None:
            keep = min(keep, max_events)
        if keep > self.max_window:
            raise TraceError(
                f"window of {keep} events exceeds the reservoir's "
                f"max_window={self.max_window}; earlier events were "
                "discarded under that bound"
            )
        start = (total - keep) // 2
        if start < self._dropped:  # unreachable given the discard rule
            raise TraceError(
                f"reservoir discarded past the window start ({start} < "
                f"{self._dropped}); max_window accounting is broken"
            )
        window_fraction = keep / total
        pcs = (
            np.concatenate(self._pcs_chunks)
            if len(self._pcs_chunks) > 1
            else self._pcs_chunks[0]
        )
        taken = (
            np.concatenate(self._taken_chunks)
            if len(self._taken_chunks) > 1
            else self._taken_chunks[0]
        )
        lo = start - self._dropped
        window_instructions = total_instructions * window_fraction
        return BranchTrace.from_columns(
            np.array(pcs[lo : lo + keep], dtype=np.int64),
            np.array(taken[lo : lo + keep], dtype=np.uint8),
            window_instructions=max(window_instructions, 1.0),
            name=name,
        )
