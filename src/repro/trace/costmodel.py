"""Per-kernel dynamic-instruction cost model.

Pin observes the instructions a binary actually executes.  Our encoders
execute their kernels through numpy, so the instrumentation layer
instead *charges* each kernel invocation the instruction mix the
equivalent hand-vectorised C kernel would retire, per unit of work
(usually one pixel; one symbol for entropy-coding kernels; one
candidate for mode-decision bookkeeping).

The per-kernel mixes below are calibrated so that a whole SVT-AV1-style
encode lands in the mix envelope of the paper's Table 2 (branch
3.3–6.9 %, load 25.8–29.4 %, store 12.9–15.5 %, AVX 29.2–34.2 %, SSE
0.2–1.0 %, other 17.6–23.3 %); a regression test pins that envelope.
The *relative* structure is what matters and follows kernel reality:

- pixel kernels (SAD/SATD/DCT/MC) are AVX-dominated with streaming
  loads and few branches;
- entropy coding and mode-decision bookkeeping are scalar, branchy and
  load-heavy;
- reconstruction writes as much as it reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from ..errors import TraceError
from .instruction import CLASS_INDEX, InstrClass, InstructionCounts

_B = InstrClass.BRANCH
_L = InstrClass.LOAD
_S = InstrClass.STORE
_X = InstrClass.AVX
_E = InstrClass.SSE
_O = InstrClass.OTHER


@dataclass(frozen=True)
class KernelCost:
    """Instruction mix charged per unit of work for one kernel.

    Parameters
    ----------
    name:
        Kernel identifier used by the instrumentation API.
    unit:
        Human-readable unit of work (documentation only).
    mix:
        Instructions of each class retired per unit.
    """

    name: str
    unit: str
    mix: Mapping[InstrClass, float]
    vector: np.ndarray = field(init=False, repr=False, compare=False)

    per_unit_total: float = field(init=False, repr=False, compare=False)
    """Total instructions per unit of work."""

    def __post_init__(self) -> None:
        vec = np.zeros(len(InstrClass), dtype=np.float64)
        for cls, per_unit in self.mix.items():
            vec[CLASS_INDEX[cls]] = per_unit
        object.__setattr__(self, "vector", vec)
        object.__setattr__(self, "per_unit_total", float(vec.sum()))

    def charge(self, counts: InstructionCounts, units: float) -> float:
        """Accumulate ``units`` of this kernel into ``counts``.

        Returns the number of instructions charged.
        """
        counts.vec += self.vector * units
        return self.per_unit_total * units


def _cost(name: str, unit: str, **mix: float) -> KernelCost:
    by_class = {InstrClass(key): value for key, value in mix.items()}
    return KernelCost(name=name, unit=unit, mix=MappingProxyType(by_class))


#: The kernel catalog.  Units: ``pixel`` kernels are charged per pixel
#: processed (for search kernels, per candidate-position pixel);
#: ``symbol`` kernels per coded symbol; ``candidate`` per RD candidate
#: evaluated.
KERNEL_COSTS: dict[str, KernelCost] = {
    cost.name: cost
    for cost in (
        # --- SIMD pixel kernels -------------------------------------
        _cost("sad", "pixel", load=0.20, avx=0.17, other=0.12, branch=0.022, store=0.012),
        _cost("satd", "pixel", load=0.16, avx=0.33, other=0.16, branch=0.018, store=0.012),
        _cost("variance", "pixel", load=0.14, avx=0.22, other=0.11, branch=0.014),
        _cost(
            "intra_pred",
            "pixel",
            load=0.18, store=0.24, avx=0.25, other=0.17, branch=0.030, sse=0.010,
        ),
        _cost(
            "mc_interp",
            "pixel",
            load=0.30, store=0.17, avx=0.37, other=0.16, branch=0.026,
        ),
        _cost(
            "fdct",
            "pixel",
            load=0.20, store=0.22, avx=0.44, other=0.19, branch=0.022, sse=0.010,
        ),
        _cost(
            "idct",
            "pixel",
            load=0.20, store=0.22, avx=0.40, other=0.17, branch=0.022,
        ),
        _cost(
            "quant",
            "pixel",
            load=0.16, store=0.16, avx=0.28, other=0.14, branch=0.065,
        ),
        _cost(
            "dequant",
            "pixel",
            load=0.14, store=0.16, avx=0.24, other=0.11, branch=0.018,
        ),
        _cost(
            "recon",
            "pixel",
            load=0.26, store=0.34, avx=0.22, other=0.12, branch=0.015,
        ),
        _cost(
            "loop_filter",
            "pixel",
            load=0.22, store=0.23, avx=0.26, other=0.14, branch=0.055, sse=0.008,
        ),
        # --- scalar control/coding kernels --------------------------
        _cost(
            "entropy_bin",
            "symbol",
            load=1.70, store=0.60, other=2.60, branch=0.55, sse=0.03,
        ),
        _cost(
            "rate_estimate",
            "symbol",
            load=0.90, store=0.10, other=1.10, branch=0.25,
        ),
        _cost(
            "rdo_bookkeep",
            "candidate",
            load=4.0, store=1.7, other=6.5, branch=2.3, sse=0.05,
        ),
        _cost(
            "mv_cost",
            "candidate",
            load=1.2, store=0.2, other=2.2, branch=0.45,
        ),
        _cost(
            "frame_admin",
            "pixel",
            load=0.25, store=0.18, other=0.40, branch=0.095,
        ),
    )
}


def kernel_cost(name: str) -> KernelCost:
    """Look up a kernel's cost entry, raising on unknown names.

    Unknown kernel names are programming errors in the codec layer, so
    this fails loudly rather than charging nothing.
    """
    try:
        return KERNEL_COSTS[name]
    except KeyError:
        raise TraceError(
            f"unknown kernel {name!r}; known: {sorted(KERNEL_COSTS)}"
        ) from None
