"""Instrumentation and trace artifacts (the Pin substitute).

See :mod:`repro.trace.instrument` for the architecture of the layer and
DESIGN.md §2 for how it substitutes for Intel Pin in the paper's
toolchain.
"""

from .branchtrace import BranchTrace
from .costmodel import KERNEL_COSTS, KernelCost, kernel_cost
from .instruction import (
    MIX_ORDER,
    BranchEvent,
    InstrClass,
    InstructionCounts,
    LoopSummary,
    MemoryTouch,
)
from .instrument import (
    LINE_BYTES,
    FunctionProfile,
    Instrumenter,
    PlaneHandle,
    site_pc,
)
from .sampling import extract_midpoint_window

__all__ = [
    "BranchEvent",
    "BranchTrace",
    "FunctionProfile",
    "InstrClass",
    "InstructionCounts",
    "Instrumenter",
    "KERNEL_COSTS",
    "KernelCost",
    "LINE_BYTES",
    "LoopSummary",
    "MIX_ORDER",
    "MemoryTouch",
    "PlaneHandle",
    "extract_midpoint_window",
    "kernel_cost",
    "site_pc",
]
