"""Deterministic synthetic video content, parameterised by entropy.

The paper evaluates on vbench clips, which it characterises by three
numbers only: resolution, frame rate, and *entropy* (a measure of
content complexity).  Since the clips themselves are not
redistributable, this module synthesises YUV 4:2:0 sequences whose
spatial detail and temporal activity are controlled by the same entropy
parameter, so that every downstream model (RD search effort, branch
behaviour, cache traffic) sees the correct complexity class.

Each vbench clip name maps to a *content style* describing what kind of
structures the generator draws:

``desktop``
    A static screen-share: flat panels, text-like horizontal stripes,
    almost no temporal change.  (entropy ~ 0.2)
``presentation``
    Slides: large flat regions with occasional "slide flips".
``sports``
    A textured background with global pan plus a few fast movers
    (bike, cricket).
``game``
    High-detail procedural texture with both global and local motion,
    plus overlay-like static HUD bars (game1/2/3).
``natural``
    Smooth low-frequency background with medium-detail moving objects
    (girl, cat, chicken, hall).
``chaotic``
    Dense high-frequency texture with fast decorrelated motion
    (holi, landscape, funny).

All generators are pure functions of ``(spec, seed)`` and therefore
fully reproducible.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

import numpy as np

from ..errors import VideoError
from .frame import Frame, Video

#: Recognised content style identifiers.
STYLES = ("desktop", "presentation", "sports", "game", "natural", "chaotic")


@dataclass(frozen=True)
class ContentSpec:
    """Parameters controlling a synthetic sequence.

    Parameters
    ----------
    name:
        Identifier for the generated clip.
    width, height:
        Luma geometry; must be even.
    fps:
        Frame rate.
    num_frames:
        Sequence length in frames.
    entropy:
        Content-complexity knob in ``[0, 8]`` matching vbench's entropy
        column.  Higher values add high-frequency texture and temporal
        activity.
    style:
        One of :data:`STYLES`; selects the structural generator.
    seed:
        Extra seed material mixed into the deterministic RNG.
    """

    name: str
    width: int
    height: int
    fps: float
    num_frames: int
    entropy: float
    style: str = "natural"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width % 2 or self.height % 2:
            raise VideoError("synthetic frames need even dimensions for 4:2:0")
        if self.width < 16 or self.height < 16:
            raise VideoError("synthetic frames must be at least 16x16")
        if not 0.0 <= self.entropy <= 8.0:
            raise VideoError(f"entropy {self.entropy} outside [0, 8]")
        if self.style not in STYLES:
            raise VideoError(f"unknown style {self.style!r}; expected one of {STYLES}")
        if self.num_frames < 1:
            raise VideoError("num_frames must be >= 1")

    def with_frames(self, num_frames: int) -> "ContentSpec":
        """Return a copy with a different frame count."""
        return dataclasses.replace(self, num_frames=num_frames)


def _rng_for(spec: ContentSpec) -> np.random.Generator:
    """Derive a stable RNG from the spec's identity fields."""
    key = f"{spec.name}|{spec.width}x{spec.height}|{spec.style}|{spec.seed}"
    digest = hashlib.sha256(key.encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _smooth_noise(
    rng: np.random.Generator, height: int, width: int, scale: int
) -> np.ndarray:
    """Band-limited noise: coarse random grid upsampled bilinearly.

    ``scale`` is the coarse-grid cell size in pixels; larger scales give
    smoother (lower-entropy) fields.  Returns float32 in ``[0, 1]``.
    """
    coarse_h = max(2, height // scale + 2)
    coarse_w = max(2, width // scale + 2)
    coarse = rng.random((coarse_h, coarse_w), dtype=np.float32)
    row_pos = np.linspace(0, coarse_h - 1.001, height, dtype=np.float32)
    col_pos = np.linspace(0, coarse_w - 1.001, width, dtype=np.float32)
    r0 = row_pos.astype(np.int32)
    c0 = col_pos.astype(np.int32)
    fr = (row_pos - r0)[:, None]
    fc = (col_pos - c0)[None, :]
    top = coarse[r0][:, c0] * (1 - fc) + coarse[r0][:, c0 + 1] * fc
    bot = coarse[r0 + 1][:, c0] * (1 - fc) + coarse[r0 + 1][:, c0 + 1] * fc
    return top * (1 - fr) + bot * fr


def _texture(
    rng: np.random.Generator, height: int, width: int, entropy: float
) -> np.ndarray:
    """Multi-octave texture whose fine-detail share grows with entropy.

    Detail octaves stay *spatially correlated* (band-limited) with only
    a small iid component at the highest entropies: real video detail
    is correlated, which is what makes it predictable and transform-
    compressible; pure per-pixel noise would make every codec's RD
    search degenerate.  Returns float32 in ``[0, 1]``.
    """
    detail = entropy / 8.0
    base = _smooth_noise(rng, height, width, scale=max(8, width // 8))
    mid = _smooth_noise(rng, height, width, scale=8)
    fine = _smooth_noise(rng, height, width, scale=2)
    grain = rng.random((height, width), dtype=np.float32)
    grain_share = 0.15 * detail
    out = (1 - detail) * base + detail * (
        0.50 * mid + (0.50 - grain_share) * fine + grain_share * grain
    )
    return np.clip(out, 0.0, 1.0)


def _to_u8(field: np.ndarray) -> np.ndarray:
    return np.clip(field * 255.0, 0, 255).astype(np.uint8)


def _subsample(plane: np.ndarray) -> np.ndarray:
    """2x2 box-filter chroma subsampling."""
    h2 = plane.shape[0] // 2
    w2 = plane.shape[1] // 2
    p = plane[: h2 * 2, : w2 * 2].astype(np.uint16)
    return ((p[0::2, 0::2] + p[0::2, 1::2] + p[1::2, 0::2] + p[1::2, 1::2]) // 4).astype(
        np.uint8
    )


@dataclass
class _Mover:
    """A rectangular object translating across the frame."""

    row: float
    col: float
    height: int
    width: int
    drow: float
    dcol: float
    value: int

    def step(self, frame_h: int, frame_w: int) -> None:
        self.row += self.drow
        self.col += self.dcol
        if self.row < 0 or self.row + self.height >= frame_h:
            self.drow = -self.drow
            self.row = min(max(self.row, 0), frame_h - self.height - 1)
        if self.col < 0 or self.col + self.width >= frame_w:
            self.dcol = -self.dcol
            self.col = min(max(self.col, 0), frame_w - self.width - 1)

    def paint(self, canvas: np.ndarray) -> None:
        r, c = int(self.row), int(self.col)
        canvas[r : r + self.height, c : c + self.width] = self.value


def _make_movers(
    rng: np.random.Generator, spec: ContentSpec, count: int, speed: float
) -> list[_Mover]:
    movers = []
    for _ in range(count):
        h = int(rng.integers(spec.height // 10 + 2, spec.height // 4 + 3))
        w = int(rng.integers(spec.width // 10 + 2, spec.width // 4 + 3))
        movers.append(
            _Mover(
                row=float(rng.integers(0, max(1, spec.height - h))),
                col=float(rng.integers(0, max(1, spec.width - w))),
                height=h,
                width=w,
                drow=float(rng.uniform(-speed, speed)),
                dcol=float(rng.uniform(-speed, speed)),
                value=int(rng.integers(30, 226)),
            )
        )
    return movers


def _style_params(spec: ContentSpec) -> dict[str, float]:
    """Derive per-style motion/texture knobs from the entropy value."""
    e = spec.entropy / 8.0
    table: dict[str, dict[str, float]] = {
        "desktop": {"pan": 0.0, "movers": 0, "speed": 0.0, "noise": 0.0006, "flip": 0.0},
        "presentation": {"pan": 0.0, "movers": 1, "speed": 0.3, "noise": 0.0012, "flip": 0.08},
        "sports": {"pan": 1.5, "movers": 2, "speed": 2.0, "noise": 0.003, "flip": 0.0},
        "game": {"pan": 1.0, "movers": 4, "speed": 2.5, "noise": 0.006, "flip": 0.02},
        "natural": {"pan": 0.4, "movers": 2, "speed": 1.0, "noise": 0.003, "flip": 0.0},
        "chaotic": {"pan": 2.0, "movers": 5, "speed": 3.0, "noise": 0.015, "flip": 0.05},
    }
    params = dict(table[spec.style])
    params["speed"] *= 0.5 + e
    params["noise"] *= 0.5 + 2.0 * e
    params["movers"] = float(int(params["movers"]))
    return params


def generate(spec: ContentSpec) -> Video:
    """Synthesise the sequence described by ``spec``.

    The generator composes, per frame:

    1. a panning multi-octave texture background (detail ∝ entropy),
    2. a population of moving rectangles (count/speed per style),
    3. per-frame sensor-like noise (amplitude ∝ entropy),
    4. occasional "scene flips" for slide/scene-cut styles.

    Chroma planes are derived from rotated copies of the luma structure
    so chroma prediction work is non-trivial, then box-subsampled.
    """
    rng = _rng_for(spec)
    params = _style_params(spec)

    # Background texture is generated once at extended width and panned.
    pan_span = int(abs(params["pan"]) * spec.num_frames) + 1
    bg = _texture(rng, spec.height, spec.width + pan_span, spec.entropy)
    bg_u = np.roll(bg, spec.width // 3, axis=1) * 0.25 + 0.5
    bg_v = np.roll(bg, -spec.width // 3, axis=1) * 0.25 + 0.5

    movers = _make_movers(rng, spec, int(params["movers"]), params["speed"])

    if spec.style == "desktop":
        # Text-like stripes give desktop content its characteristic
        # sharp horizontal structure.
        stripes = np.zeros((spec.height, spec.width), dtype=np.float32)
        for r in range(4, spec.height - 4, 6):
            length = int(rng.integers(spec.width // 4, spec.width - 4))
            stripes[r, 2 : 2 + length] = 0.6
        bg[:, : spec.width] = 0.85 - stripes

    frames: list[Frame] = []
    pan_offset = 0.0
    for t in range(spec.num_frames):
        if params["flip"] > 0 and rng.random() < params["flip"] and t > 0:
            # Scene cut: redraw background texture.
            bg = _texture(rng, spec.height, spec.width + pan_span, spec.entropy)
        pan_offset += params["pan"]
        off = int(pan_offset) % max(1, pan_span)
        luma_f = bg[:, off : off + spec.width].copy()

        canvas = _to_u8(luma_f)
        for mover in movers:
            mover.paint(canvas)
            mover.step(spec.height, spec.width)

        if params["noise"] > 0:
            noise = rng.normal(0.0, params["noise"] * 255.0, canvas.shape)
            canvas = np.clip(canvas.astype(np.float32) + noise, 0, 255).astype(np.uint8)

        u_full = _to_u8(bg_u[:, off : off + spec.width])
        v_full = _to_u8(bg_v[:, off : off + spec.width])
        frames.append(
            Frame(canvas, _subsample(u_full), _subsample(v_full), index=t)
        )

    return Video(frames, fps=spec.fps, name=spec.name)


def measured_entropy(video: Video) -> float:
    """Shannon entropy (bits/pixel) of luma *temporal differences*.

    vbench defines clip entropy over the frame-difference signal, which
    captures both spatial detail and motion.  For a single-frame video
    the spatial gradient is used instead.
    """
    samples: list[np.ndarray] = []
    if video.num_frames >= 2:
        for prev, cur in zip(video.frames, video.frames[1:]):
            diff = cur.y.data.astype(np.int16) - prev.y.data.astype(np.int16)
            samples.append(diff.ravel())
    else:
        grad = np.diff(video.frames[0].y.data.astype(np.int16), axis=1)
        samples.append(grad.ravel())
    values = np.concatenate(samples)
    hist = np.bincount((values + 256).astype(np.int32), minlength=512)
    probs = hist[hist > 0] / values.size
    return float(-(probs * np.log2(probs)).sum())
