"""Bjøntegaard delta metrics (BD-rate and BD-PSNR).

Implements the standard VCEG-M33 method the paper uses for Fig. 2a: fit
third-order polynomials to each encoder's (log-bitrate, PSNR) curve and
integrate the horizontal (BD-rate) or vertical (BD-PSNR) gap between
the curves over the overlapping quality range.

A negative BD-rate means the test encoder needs *less* bitrate than the
reference for the same quality — the sense in which the paper reports
SVT-AV1 as having the lowest PSNR BD-rate of the studied encoders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import VideoError


@dataclass(frozen=True)
class RatePoint:
    """One rate-distortion sample: bitrate (kbps) and quality (dB)."""

    bitrate_kbps: float
    psnr_db: float

    def __post_init__(self) -> None:
        if self.bitrate_kbps <= 0:
            raise VideoError(f"bitrate must be positive, got {self.bitrate_kbps}")


def _validate_curve(points: list[RatePoint]) -> tuple[np.ndarray, np.ndarray]:
    """Sort a curve by quality and return (log10 rate, psnr) arrays."""
    if len(points) < 4:
        raise VideoError(
            f"BD metrics need at least 4 rate points, got {len(points)}"
        )
    ordered = sorted(points, key=lambda p: p.psnr_db)
    psnr = np.array([p.psnr_db for p in ordered], dtype=np.float64)
    if np.any(np.diff(psnr) <= 1e-9):
        raise VideoError("rate points must have strictly increasing PSNR")
    log_rate = np.array(
        [math.log10(p.bitrate_kbps) for p in ordered], dtype=np.float64
    )
    return log_rate, psnr


def _poly_integral(coeffs: np.ndarray, low: float, high: float) -> float:
    """Definite integral of a fitted cubic between two bounds."""
    integral = np.polyint(coeffs)
    return float(np.polyval(integral, high) - np.polyval(integral, low))


def bd_rate(
    reference: list[RatePoint], test: list[RatePoint]
) -> float:
    """BD-rate (percent) of ``test`` relative to ``reference``.

    Returns the average percent change in bitrate at equal PSNR over
    the overlapping PSNR interval.  Negative values favour ``test``.
    """
    ref_lr, ref_q = _validate_curve(reference)
    tst_lr, tst_q = _validate_curve(test)
    low = max(ref_q.min(), tst_q.min())
    high = min(ref_q.max(), tst_q.max())
    if high <= low:
        raise VideoError(
            "rate curves do not overlap in PSNR; cannot compute BD-rate"
        )
    # Fit log-rate as a cubic in PSNR for each curve.
    ref_fit = np.polyfit(ref_q, ref_lr, 3)
    tst_fit = np.polyfit(tst_q, tst_lr, 3)
    avg_diff = (
        _poly_integral(tst_fit, low, high) - _poly_integral(ref_fit, low, high)
    ) / (high - low)
    return float((10.0**avg_diff - 1.0) * 100.0)


def bd_psnr(
    reference: list[RatePoint], test: list[RatePoint]
) -> float:
    """BD-PSNR (dB) of ``test`` relative to ``reference``.

    Average PSNR gain at equal bitrate over the overlapping log-rate
    interval.  Positive values favour ``test``.
    """
    ref_lr, ref_q = _validate_curve(reference)
    tst_lr, tst_q = _validate_curve(test)
    low = max(ref_lr.min(), tst_lr.min())
    high = min(ref_lr.max(), tst_lr.max())
    if high <= low:
        raise VideoError(
            "rate curves do not overlap in bitrate; cannot compute BD-PSNR"
        )
    ref_fit = np.polyfit(ref_lr, ref_q, 3)
    tst_fit = np.polyfit(tst_lr, tst_q, 3)
    avg_diff = (
        _poly_integral(tst_fit, low, high) - _poly_integral(ref_fit, low, high)
    ) / (high - low)
    return float(avg_diff)
