"""YUV 4:2:0 frame and plane containers.

The encoders in :mod:`repro.codecs` operate on 8-bit YUV 4:2:0 video,
the format used by every clip in vbench.  A :class:`Frame` owns three
:class:`Plane` objects (luma plus two half-resolution chroma planes) and
enforces the geometric invariants (even dimensions, matching chroma
sizes) that block-based encoders rely on.

Planes are stored as ``numpy.uint8`` arrays.  Arithmetic in the codec
layer widens to wider integer types explicitly; keeping storage at 8
bits mirrors the memory traffic of a production encoder, which the
cache-simulation layer depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import VideoError

#: Luma sample range for 8-bit video.
MAX_SAMPLE = 255


@dataclass(frozen=True)
class Plane:
    """A single 8-bit sample plane.

    Parameters
    ----------
    data:
        Two-dimensional ``uint8`` array of samples, indexed ``[row, col]``.
    """

    data: np.ndarray

    def __post_init__(self) -> None:
        if self.data.ndim != 2:
            raise VideoError(f"plane must be 2-D, got shape {self.data.shape}")
        if self.data.dtype != np.uint8:
            raise VideoError(f"plane dtype must be uint8, got {self.data.dtype}")

    @property
    def height(self) -> int:
        """Number of sample rows."""
        return int(self.data.shape[0])

    @property
    def width(self) -> int:
        """Number of sample columns."""
        return int(self.data.shape[1])

    @property
    def size_bytes(self) -> int:
        """Storage footprint of the plane in bytes (one byte per sample)."""
        return self.height * self.width

    def block(self, row: int, col: int, height: int, width: int) -> np.ndarray:
        """Return the ``height x width`` block anchored at ``(row, col)``.

        Blocks that overhang the right or bottom edge are padded by
        replicating the last row/column, matching the edge-extension
        behaviour of real encoders.
        """
        if row < 0 or col < 0:
            raise VideoError(f"negative block origin ({row}, {col})")
        if row >= self.height or col >= self.width:
            raise VideoError(
                f"block origin ({row}, {col}) outside plane "
                f"{self.height}x{self.width}"
            )
        avail_h = min(height, self.height - row)
        avail_w = min(width, self.width - col)
        blk = self.data[row : row + avail_h, col : col + avail_w]
        if avail_h == height and avail_w == width:
            return blk
        return np.pad(
            blk, ((0, height - avail_h), (0, width - avail_w)), mode="edge"
        )


class Frame:
    """One YUV 4:2:0 picture.

    Parameters
    ----------
    y, u, v:
        Luma and chroma sample arrays.  Chroma planes must be exactly
        half the luma resolution in both dimensions.
    index:
        Display order of the frame within its sequence.
    """

    def __init__(
        self,
        y: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        index: int = 0,
    ) -> None:
        self.y = Plane(np.ascontiguousarray(y, dtype=np.uint8))
        self.u = Plane(np.ascontiguousarray(u, dtype=np.uint8))
        self.v = Plane(np.ascontiguousarray(v, dtype=np.uint8))
        self.index = index
        if self.y.height % 2 or self.y.width % 2:
            raise VideoError(
                f"luma dimensions must be even for 4:2:0, got "
                f"{self.y.height}x{self.y.width}"
            )
        expect = (self.y.height // 2, self.y.width // 2)
        for name, plane in (("u", self.u), ("v", self.v)):
            if (plane.height, plane.width) != expect:
                raise VideoError(
                    f"chroma plane {name} is {plane.height}x{plane.width}, "
                    f"expected {expect[0]}x{expect[1]}"
                )

    @property
    def height(self) -> int:
        """Luma height in samples."""
        return self.y.height

    @property
    def width(self) -> int:
        """Luma width in samples."""
        return self.y.width

    @property
    def size_bytes(self) -> int:
        """Total frame footprint (Y + U + V) in bytes."""
        return self.y.size_bytes + self.u.size_bytes + self.v.size_bytes

    def planes(self) -> Iterator[Plane]:
        """Yield the Y, U and V planes in that order."""
        yield self.y
        yield self.u
        yield self.v

    def copy(self) -> "Frame":
        """Deep-copy the frame (new sample storage)."""
        return Frame(
            self.y.data.copy(), self.u.data.copy(), self.v.data.copy(), self.index
        )

    @classmethod
    def blank(cls, width: int, height: int, value: int = 128, index: int = 0) -> "Frame":
        """Create a uniform frame (default mid-grey)."""
        if not 0 <= value <= MAX_SAMPLE:
            raise VideoError(f"sample value {value} outside [0, {MAX_SAMPLE}]")
        y = np.full((height, width), value, dtype=np.uint8)
        c = np.full((height // 2, width // 2), 128, dtype=np.uint8)
        return cls(y, c, c.copy(), index=index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame(#{self.index}, {self.width}x{self.height})"


class Video:
    """An ordered sequence of equally-sized frames plus timing metadata.

    Parameters
    ----------
    frames:
        Display-order frame list; all frames must share one geometry.
    fps:
        Frame rate used for bitrate computation (frames per second).
    name:
        Human-readable identifier (e.g. the vbench clip name).
    """

    def __init__(self, frames: list[Frame], fps: float, name: str = "video") -> None:
        if not frames:
            raise VideoError("video must contain at least one frame")
        if fps <= 0:
            raise VideoError(f"fps must be positive, got {fps}")
        geom = (frames[0].width, frames[0].height)
        for frame in frames:
            if (frame.width, frame.height) != geom:
                raise VideoError("all frames in a video must share one geometry")
        self.frames = frames
        self.fps = float(fps)
        self.name = name
        #: Backing shared-memory segment, when the frames' planes are
        #: zero-copy views over one (:mod:`repro.parallel.shm` sets
        #: this on attach).  Held here so the mapping outlives every
        #: view; ``None`` for ordinary in-process videos.
        self.shm = None

    @property
    def width(self) -> int:
        """Luma width shared by all frames."""
        return self.frames[0].width

    @property
    def height(self) -> int:
        """Luma height shared by all frames."""
        return self.frames[0].height

    @property
    def num_frames(self) -> int:
        """Number of frames in display order."""
        return len(self.frames)

    @property
    def duration_seconds(self) -> float:
        """Playback duration implied by the frame count and rate."""
        return self.num_frames / self.fps

    @property
    def raw_size_bytes(self) -> int:
        """Uncompressed size of the whole sequence."""
        return sum(f.size_bytes for f in self.frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __len__(self) -> int:
        return self.num_frames

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Video({self.name!r}, {self.width}x{self.height}, "
            f"{self.num_frames} frames @ {self.fps:g} fps)"
        )
