"""Y4M (YUV4MPEG2) reader and writer.

Y4M is the uncompressed container vbench ships its clips in and the
input format all five studied encoders consume.  Supporting it lets
users of this library run the characterization pipeline on their own
clips, not just the synthetic proxies.

Only the subset of the format the encoders need is implemented:
8-bit 4:2:0 (``C420``/``C420jpeg``/``C420mpeg2``), progressive frames.
"""

from __future__ import annotations

import io
import os
from fractions import Fraction

import numpy as np

from ..errors import VideoError
from .frame import Frame, Video

_MAGIC = b"YUV4MPEG2"
_SUPPORTED_CHROMA = {"420", "420jpeg", "420mpeg2", "420paldv"}


def _parse_header(line: bytes) -> tuple[int, int, float]:
    """Parse a stream header line into (width, height, fps)."""
    fields = line.decode("ascii", errors="replace").strip().split(" ")
    if not fields or fields[0] != _MAGIC.decode():
        raise VideoError(f"not a Y4M stream (header {line[:20]!r})")
    width = height = 0
    fps = 0.0
    for field in fields[1:]:
        if not field:
            continue
        tag, value = field[0], field[1:]
        if tag == "W":
            width = int(value)
        elif tag == "H":
            height = int(value)
        elif tag == "F":
            num, _, den = value.partition(":")
            fps = float(Fraction(int(num), int(den or "1")))
        elif tag == "C":
            if value not in _SUPPORTED_CHROMA:
                raise VideoError(f"unsupported Y4M chroma sampling C{value}")
        elif tag == "I":
            if value not in ("p", "?"):
                raise VideoError(f"only progressive Y4M supported, got I{value}")
    if width <= 0 or height <= 0:
        raise VideoError("Y4M header missing W/H")
    if fps <= 0:
        fps = 30.0
    return width, height, fps


def read_y4m(path: str | os.PathLike[str]) -> Video:
    """Read a Y4M file into a :class:`~repro.video.frame.Video`."""
    with open(path, "rb") as fh:
        return _read_stream(fh, name=os.path.basename(os.fspath(path)))


def _read_stream(fh: io.BufferedIOBase, name: str) -> Video:
    header = fh.readline()
    width, height, fps = _parse_header(header)
    y_size = width * height
    c_size = (width // 2) * (height // 2)
    frames: list[Frame] = []
    index = 0
    while True:
        marker = fh.readline()
        if not marker:
            break
        if not marker.startswith(b"FRAME"):
            raise VideoError(f"expected FRAME marker, got {marker[:20]!r}")
        raw = fh.read(y_size + 2 * c_size)
        if len(raw) != y_size + 2 * c_size:
            raise VideoError(f"truncated frame {index} in Y4M stream")
        buf = np.frombuffer(raw, dtype=np.uint8)
        y = buf[:y_size].reshape(height, width)
        u = buf[y_size : y_size + c_size].reshape(height // 2, width // 2)
        v = buf[y_size + c_size :].reshape(height // 2, width // 2)
        frames.append(Frame(y.copy(), u.copy(), v.copy(), index=index))
        index += 1
    if not frames:
        raise VideoError("Y4M stream contains no frames")
    return Video(frames, fps=fps, name=name)


def write_y4m(video: Video, path: str | os.PathLike[str]) -> None:
    """Write a :class:`~repro.video.frame.Video` as 8-bit 4:2:0 Y4M."""
    fps = Fraction(video.fps).limit_denominator(1001 * 60)
    header = (
        f"YUV4MPEG2 W{video.width} H{video.height} "
        f"F{fps.numerator}:{fps.denominator} Ip A1:1 C420\n"
    )
    with open(path, "wb") as fh:
        fh.write(header.encode("ascii"))
        for frame in video:
            fh.write(b"FRAME\n")
            fh.write(frame.y.data.tobytes())
            fh.write(frame.u.data.tobytes())
            fh.write(frame.v.data.tobytes())
