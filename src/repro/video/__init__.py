"""Video substrate: frames, synthetic content, vbench catalog, metrics.

This package stands in for the raw-video side of the paper's testbed:
the vbench clip suite (Table 1), the Y4M container the encoders read,
and the quality/size metrics (§2.1) used throughout the evaluation.
"""

from .bdrate import RatePoint, bd_psnr, bd_rate
from .frame import Frame, Plane, Video
from .io import read_y4m, write_y4m
from .metrics import (
    bitrate_kbps,
    frame_psnr,
    psnr,
    sequence_psnr,
    sequence_ssim,
    ssim,
)
from .synthetic import ContentSpec, generate, measured_entropy
from .vbench import CATALOG, VbenchEntry, entry, load, names, table1_rows

__all__ = [
    "CATALOG",
    "ContentSpec",
    "Frame",
    "Plane",
    "RatePoint",
    "VbenchEntry",
    "Video",
    "bd_psnr",
    "bd_rate",
    "bitrate_kbps",
    "entry",
    "frame_psnr",
    "generate",
    "load",
    "measured_entropy",
    "names",
    "psnr",
    "read_y4m",
    "sequence_psnr",
    "sequence_ssim",
    "ssim",
    "table1_rows",
    "write_y4m",
]
