"""Video quality and size metrics: PSNR, SSIM, bitrate.

These implement the metrics defined in the paper's §2.1.  PSNR is
computed per frame and averaged over the sequence (the convention the
paper cites from Nasrabadi et al.); bitrate converts an encoded size to
kilobits per second using the clip's frame rate.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import VideoError
from .frame import Frame, Video

#: PSNR cap for identical frames, matching common tool behaviour.
PSNR_CAP_DB = 100.0


def mse(reference: np.ndarray, distorted: np.ndarray) -> float:
    """Mean squared error between two equally-shaped sample arrays."""
    if reference.shape != distorted.shape:
        raise VideoError(
            f"shape mismatch {reference.shape} vs {distorted.shape}"
        )
    diff = reference.astype(np.float64) - distorted.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr(reference: np.ndarray, distorted: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (capped at :data:`PSNR_CAP_DB`)."""
    err = mse(reference, distorted)
    if err == 0.0:
        return PSNR_CAP_DB
    return min(PSNR_CAP_DB, 10.0 * math.log10(peak * peak / err))


def frame_psnr(reference: Frame, distorted: Frame) -> float:
    """Luma PSNR of one frame pair.

    The paper reports luma ("Y") PSNR, the standard choice for codec
    comparison; chroma planes are excluded.
    """
    return psnr(reference.y.data, distorted.y.data)


def sequence_psnr(reference: Video, distorted: Video) -> float:
    """Average per-frame luma PSNR across a sequence (paper §2.1)."""
    if reference.num_frames != distorted.num_frames:
        raise VideoError(
            f"frame-count mismatch {reference.num_frames} vs {distorted.num_frames}"
        )
    values = [
        frame_psnr(ref, dec) for ref, dec in zip(reference.frames, distorted.frames)
    ]
    return float(np.mean(values))


def bitrate_kbps(total_bits: int, num_frames: int, fps: float) -> float:
    """Bitrate in kilobits/second for ``total_bits`` over ``num_frames``."""
    if num_frames <= 0 or fps <= 0:
        raise VideoError("num_frames and fps must be positive")
    seconds = num_frames / fps
    return total_bits / seconds / 1000.0


def ssim(reference: np.ndarray, distorted: np.ndarray, window: int = 8) -> float:
    """Structural similarity index over non-overlapping windows.

    A simplified tiled SSIM (no Gaussian weighting) sufficient for
    relative quality comparisons; included as the extension metric for
    BD-rate ablations.
    """
    if reference.shape != distorted.shape:
        raise VideoError(
            f"shape mismatch {reference.shape} vs {distorted.shape}"
        )
    c1 = (0.01 * 255) ** 2
    c2 = (0.03 * 255) ** 2
    ref = reference.astype(np.float64)
    dis = distorted.astype(np.float64)
    h = ref.shape[0] // window * window
    w = ref.shape[1] // window * window
    if h == 0 or w == 0:
        raise VideoError(f"frame smaller than SSIM window {window}")
    scores = []
    for r in range(0, h, window):
        for c in range(0, w, window):
            a = ref[r : r + window, c : c + window]
            b = dis[r : r + window, c : c + window]
            mu_a, mu_b = a.mean(), b.mean()
            var_a, var_b = a.var(), b.var()
            cov = ((a - mu_a) * (b - mu_b)).mean()
            scores.append(
                ((2 * mu_a * mu_b + c1) * (2 * cov + c2))
                / ((mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2))
            )
    return float(np.mean(scores))


def sequence_ssim(reference: Video, distorted: Video) -> float:
    """Average per-frame luma SSIM across a sequence."""
    if reference.num_frames != distorted.num_frames:
        raise VideoError(
            f"frame-count mismatch {reference.num_frames} vs {distorted.num_frames}"
        )
    values = [
        ssim(ref.y.data, dec.y.data)
        for ref, dec in zip(reference.frames, distorted.frames)
    ]
    return float(np.mean(values))
