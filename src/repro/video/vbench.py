"""The vbench workload catalog (paper Table 1) and proxy scaling.

vbench (Lottarini et al., ASPLOS'18) is a suite of fifteen 5-second
clips spanning resolutions from 480p to 2160p and content entropy from
0.2 (a static desktop capture) to 7.7.  The paper characterises
encoders on exactly these clips, so the catalog below records each
clip's published resolution / frame rate / entropy plus the content
style our synthetic generator uses for it.

Running a software encoder over full-resolution 5-second clips is not
feasible inside a pure-Python reproduction, so each catalog entry also
defines a *proxy* geometry: a reduced resolution in the same aspect
class whose relative size ordering matches the original (2160p proxy >
1080p proxy > 720p proxy > 480p proxy).  All instruction-count and
memory-traffic comparisons in the paper are *relative* across videos
and parameters, which proxy scaling preserves; absolute counts are
reported per kilo-instruction or normalised, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import VideoError
from .frame import Video
from .synthetic import ContentSpec, generate

#: Proxy luma geometry per resolution class: (width, height).
PROXY_GEOMETRY: dict[str, tuple[int, int]] = {
    "480p": (80, 48),
    "720p": (96, 64),
    "1080p": (128, 72),
    "2160p": (160, 96),
}

#: Native luma geometry per resolution class, for bitrate scaling.
NATIVE_GEOMETRY: dict[str, tuple[int, int]] = {
    "480p": (854, 480),
    "720p": (1280, 720),
    "1080p": (1920, 1080),
    "2160p": (3840, 2160),
}

#: Default proxy sequence length in frames.
DEFAULT_NUM_FRAMES = 4


@dataclass(frozen=True)
class VbenchEntry:
    """One row of the paper's Table 1.

    Parameters
    ----------
    name:
        Clip identifier as printed in the paper.
    resolution:
        Resolution class string (``"480p"`` ... ``"2160p"``).
    fps:
        Published frame rate.
    entropy:
        Published content entropy.
    style:
        Content style for :mod:`repro.video.synthetic`.
    """

    name: str
    resolution: str
    fps: float
    entropy: float
    style: str

    @property
    def native_size(self) -> tuple[int, int]:
        """Full-resolution ``(width, height)`` of the original clip."""
        return NATIVE_GEOMETRY[self.resolution]

    @property
    def proxy_size(self) -> tuple[int, int]:
        """Reduced ``(width, height)`` used by the reproduction."""
        return PROXY_GEOMETRY[self.resolution]

    @property
    def pixel_scale(self) -> float:
        """Native-to-proxy pixel-count ratio (for bitrate extrapolation)."""
        nw, nh = self.native_size
        pw, ph = self.proxy_size
        return (nw * nh) / (pw * ph)

    def spec(self, num_frames: int = DEFAULT_NUM_FRAMES) -> ContentSpec:
        """Build the synthetic-content spec for this clip."""
        width, height = self.proxy_size
        return ContentSpec(
            name=self.name,
            width=width,
            height=height,
            fps=self.fps,
            num_frames=num_frames,
            entropy=self.entropy,
            style=self.style,
        )

    def load(self, num_frames: int = DEFAULT_NUM_FRAMES) -> Video:
        """Generate the proxy video for this clip."""
        return generate(self.spec(num_frames))


#: Paper Table 1 (plus ``house``, which appears in Table 2 and completes
#: the 15-clip suite; the printed Table 1 duplicates the ``bike`` row).
CATALOG: tuple[VbenchEntry, ...] = (
    VbenchEntry("desktop", "720p", 30, 0.2, "desktop"),
    VbenchEntry("presentation", "1080p", 25, 0.2, "presentation"),
    VbenchEntry("bike", "720p", 29, 0.92, "sports"),
    VbenchEntry("house", "1080p", 30, 2.2, "natural"),
    VbenchEntry("funny", "1080p", 30, 2.5, "chaotic"),
    VbenchEntry("cricket", "720p", 30, 3.4, "sports"),
    VbenchEntry("game1", "1080p", 60, 4.6, "game"),
    VbenchEntry("game2", "720p", 30, 4.9, "game"),
    VbenchEntry("game3", "720p", 59, 6.1, "game"),
    VbenchEntry("girl", "720p", 30, 5.9, "natural"),
    VbenchEntry("chicken", "2160p", 30, 5.9, "natural"),
    VbenchEntry("cat", "480p", 29, 6.8, "natural"),
    VbenchEntry("holi", "480p", 30, 7.0, "chaotic"),
    VbenchEntry("landscape", "1080p", 29, 7.2, "chaotic"),
    VbenchEntry("hall", "1080p", 29, 7.7, "natural"),
)

_BY_NAME = {entry.name: entry for entry in CATALOG}


def names() -> list[str]:
    """Names of all catalog clips, in Table-1 order."""
    return [entry.name for entry in CATALOG]


def entry(name: str) -> VbenchEntry:
    """Look up a catalog entry by clip name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise VideoError(
            f"unknown vbench clip {name!r}; known: {', '.join(names())}"
        ) from None


def load(name: str, num_frames: int = DEFAULT_NUM_FRAMES) -> Video:
    """Generate the proxy video for the named clip."""
    return entry(name).load(num_frames)


def table1_rows() -> list[dict[str, object]]:
    """Rows of the paper's Table 1 as dictionaries (for reporting)."""
    return [
        {
            "video": e.name,
            "resolution": e.resolution,
            "fps": e.fps,
            "entropy": e.entropy,
        }
        for e in CATALOG
    ]
