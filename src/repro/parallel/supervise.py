"""Worker supervision primitives: heartbeats, leases, graceful drain.

The pooled sweep engine (:mod:`repro.parallel.pool`) guards the
process boundary with three mechanisms that live here:

**Heartbeats.**  Each dispatched cell gets a private JSONL sidecar
file; the worker appends a beat line (pid, sequence number, wall
time) from a daemon thread every ``heartbeat_interval`` seconds, with
the first beat written *synchronously* before compute starts so "the
worker picked this cell up" is observable immediately.  The parent
reads only the last line per tick.  Beats are deliberately kept out
of the fsync'd run ledger: they are liveness telemetry, not resumable
state, and an fsync per beat per worker would serialize the sweep on
the disk.  A wall clock is used on both sides — parent and workers
share a machine, and wall time survives the process boundary where a
monotonic reading does not.

**Leases.**  A :class:`Lease` is the parent-side record of one
dispatch: which cell, which heartbeat file, when, and whether the
supervisor itself killed the worker (a stall kill), which matters for
crash blame.  The durable half of the lease lives in the run ledger
(see :meth:`~repro.resilience.executor.ResilienceGuard.grant_lease`).

**Drain.**  :func:`drain_guard` converts the first SIGINT/SIGTERM
into an orderly stop — sweep loops poll :func:`drain_requested`
between cells, finish what is in flight, flush the ledger and raise
:class:`~repro.errors.SweepInterruptedError`; a second signal raises
:class:`KeyboardInterrupt` for users who mean it.  The state is
module-ambient so the serial loop, the pooled supervisor and nested
sweeps inside one experiment all observe the same request.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..core.session import CellSpec, RunKey
from ..errors import ExperimentError
from ..obs import events as obs_events

#: Missed-beat factor: a lease is stalled after ``interval * misses``
#: seconds without a beat.  Generous by default — a false stall kill
#: costs a worker restart; a missed hang merely costs latency.
DEFAULT_HEARTBEAT_MISSES = 20


@dataclass(frozen=True)
class SupervisionConfig:
    """The supervisor's knobs, resolved once per pooled sweep."""

    #: Seconds between worker heartbeats (also the supervisor's
    #: polling granularity).
    heartbeat_interval: float = 0.5
    #: Beats a lease may miss before it is declared stalled.
    heartbeat_misses: int = DEFAULT_HEARTBEAT_MISSES
    #: Pool rebuilds allowed per sweep before giving up.
    max_worker_restarts: int = 12
    #: Worker crashes one cell may cause before it is poison.
    max_cell_crashes: int = 2

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ExperimentError("heartbeat interval must be positive")
        if self.heartbeat_misses < 1:
            raise ExperimentError("heartbeat miss budget must be >= 1")
        if self.max_worker_restarts < 0:
            raise ExperimentError("max worker restarts must be >= 0")
        if self.max_cell_crashes < 0:
            raise ExperimentError("max cell crashes must be >= 0")

    @property
    def stall_deadline(self) -> float:
        """Seconds without a beat before a lease counts as stalled."""
        return self.heartbeat_interval * self.heartbeat_misses

    @property
    def poll_interval(self) -> float:
        """How long the supervisor blocks per tick."""
        return min(0.25, max(0.02, self.heartbeat_interval / 2))


# -- heartbeats ------------------------------------------------------


class HeartbeatWriter:
    """Worker-side beat emitter for one leased cell.

    ``start()`` writes beat 0 synchronously, then a daemon thread
    appends one line per interval until ``stop()``.  Append + flush
    only (no fsync): a beat that dies in the page cache dies with the
    machine, and a dead machine has no heartbeat either way.
    """

    def __init__(self, path: str, key: str, interval: float) -> None:
        self.path = path
        self.key = key
        self.interval = interval
        self._seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def beat(self) -> None:
        line = json.dumps(
            {
                "pid": os.getpid(),
                "key": self.key,
                "seq": self._seq,
                "wall": time.time(),
            },
            sort_keys=True,
        )
        self._seq += 1
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
        except OSError:
            # A beat the worker cannot write looks, to the parent,
            # like a hang — which is the honest signal for a worker
            # whose disk is gone.
            pass

    def start(self) -> None:
        self.beat()
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-heartbeat-{self.key}",
            daemon=True,
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(self.interval + 1.0)
            self._thread = None


def last_beat(path: str) -> dict[str, Any] | None:
    """The most recent parseable beat in ``path``, else ``None``.

    Tolerates a torn final line (the beat file is append-only and
    unsynced by design) by falling back to the previous line.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError:
        return None
    for line in reversed(raw.decode("utf-8", "replace").splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            beat = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(beat, dict) and "wall" in beat:
            return beat
    return None


# -- leases ----------------------------------------------------------


@dataclass
class Lease:
    """Parent-side state of one dispatched cell."""

    key: RunKey
    cell_key: str
    index: int
    spec: CellSpec
    hb_path: str
    granted_wall: float
    seq: int
    #: Set when the supervisor SIGKILLed this lease's worker for a
    #: stalled heartbeat — the subsequent pool break is then *this*
    #: cell's fault and no other in-flight cell takes crash blame.
    stall_killed: bool = False

    def started(self) -> bool:
        """Whether a worker ever picked this cell up (wrote a beat)."""
        return os.path.exists(self.hb_path)

    def stalled(self, now_wall: float, deadline: float) -> bool:
        """No beat within ``deadline`` seconds (measured from the last
        beat, or from the grant for a lease no worker ever started)."""
        beat = last_beat(self.hb_path)
        reference = beat["wall"] if beat is not None else self.granted_wall
        return now_wall - reference > deadline

    def beat_pid(self) -> int | None:
        """Pid of the worker that last beat for this lease, if any."""
        beat = last_beat(self.hb_path)
        return int(beat["pid"]) if beat is not None else None


# -- graceful drain --------------------------------------------------


@dataclass
class DrainState:
    """Ambient record of a pending stop request."""

    signal_name: str | None = None
    _owned_handlers: list[tuple[int, Any]] = field(default_factory=list)

    @property
    def requested(self) -> bool:
        return self.signal_name is not None

    def request(self, signal_name: str) -> None:
        if self.signal_name is None:
            self.signal_name = signal_name


_drain: DrainState | None = None


def drain_requested() -> str | None:
    """The signal name of a pending drain request, else ``None``."""
    return _drain.signal_name if _drain is not None else None


def request_drain(signal_name: str = "SIGTERM") -> None:
    """Programmatically request a drain (tests; embedding callers)."""
    if _drain is not None:
        _drain.request(signal_name)


@contextmanager
def drain_guard() -> Iterator[DrainState]:
    """Install signal-to-drain conversion for the enclosed run.

    Nested guards share the outermost state, so one experiment's many
    sweeps see a single drain request.  Handlers are only installed
    from the main thread (Python restricts ``signal.signal`` to it);
    elsewhere the guard still provides the ambient state for
    :func:`request_drain`.
    """
    global _drain
    if _drain is not None:
        yield _drain
        return
    state = DrainState()
    _drain = state
    is_main = threading.current_thread() is threading.main_thread()
    try:
        if is_main:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous = signal.signal(
                    signum, _make_handler(state, signum)
                )
                state._owned_handlers.append((signum, previous))
        yield state
    finally:
        for signum, previous in state._owned_handlers:
            signal.signal(signum, previous)
        _drain = None


def _make_handler(state: DrainState, signum: int):
    name = signal.Signals(signum).name

    def handler(_signum, _frame):
        if state.requested:
            # The user asked twice; stop being graceful.
            raise KeyboardInterrupt
        state.request(name)
        obs_events.warn(
            "sweep.drain",
            f"{name} received: draining (in-flight cells finish, "
            "then the run stops; repeat to abort immediately)",
            signal=name,
        )

    return handler
