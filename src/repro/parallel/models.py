"""Per-encoder threading models (task-graph builders).

Each builder converts an instrumented encode's real per-unit work
(:class:`~repro.codecs.base.TaskRecord`) into the task DAG that
encoder's threading architecture creates.  The four models mirror the
documented designs of the encoders in the paper's §4.6 study:

``svt-av1``
    SVT's process-based picture pipeline: superblock *segments* are
    independent tasks within a frame, per-frame entropy/filter stages
    are pipelined, and consecutive pictures overlap (mode decision of
    frame *t+1* only waits for the reference portion of frame *t*).
    Abundant, uniform tasks — the paper's most scalable encoder.

``x264``
    Frame-level threading: one thread owns a frame; a frame may start
    once the previous frame's co-located rows are reconstructed (the
    sync-point lag), giving pipeline parallelism that saturates around
    the frame-lag depth.

``x265``
    Wavefront parallel processing *plus* a dominant per-frame master
    thread (rate control, CTU row launch, final entropy) that the
    paper's data shows serialising the encoder (max ~1.3x): the master
    chain is pinned to worker 0 and carries most of each frame's work.

``libaom``
    Tile threads: a fixed tile grid bounds the per-frame parallelism;
    frames are serialised on the reference chain.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from ..codecs.base import EncodeResult, TaskRecord
from ..errors import SimulationError
from .tasks import Task, TaskGraph


def _records_by_frame(
    result: EncodeResult,
) -> dict[int, dict[str, list[TaskRecord]]]:
    frames: dict[int, dict[str, list[TaskRecord]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for record in result.tasks:
        frames[record.frame][record.kind].append(record)
    if not frames:
        raise SimulationError("encode produced no task records")
    return frames


def _frame_stage_work(records: dict[str, list[TaskRecord]]) -> tuple[float, float]:
    """(parallelisable superblock work, serial stage work) for a frame."""
    sb_work = sum(r.instructions for r in records.get("superblock", []))
    serial = sum(
        r.instructions
        for kind in ("entropy", "filter", "admin")
        for r in records.get(kind, [])
    )
    return sb_work, serial


def build_svt_av1_graph(result: EncodeResult, segments: int = 8) -> TaskGraph:
    """SVT-AV1 picture-pipeline graph.

    Superblocks are grouped into ``segments`` independent tasks per
    frame.  A segment of frame *t* depends only on the *same* segment
    of frame *t-1* (its reference pixels), so pictures overlap; the
    serial stages (entropy, filter) hang off the frame's segments and
    feed nothing downstream except the next frame's same-numbered
    segment chain through the filter.
    """
    frames = _records_by_frame(result)
    tasks: list[Task] = []
    for frame_index in sorted(frames):
        records = frames[frame_index]
        sbs = records.get("superblock", [])
        per_segment: dict[int, float] = defaultdict(float)
        for record in sbs:
            per_segment[record.index % segments] += record.instructions
        for segment, work in sorted(per_segment.items()):
            deps: tuple[str, ...] = ()
            if frame_index > 0 and frame_index - 1 in frames:
                deps = (f"f{frame_index - 1}.seg{segment}",)
            tasks.append(
                Task(f"f{frame_index}.seg{segment}", work, deps)
            )
        _, serial = _frame_stage_work(records)
        seg_names = tuple(
            f"f{frame_index}.seg{s}" for s in sorted(per_segment)
        )
        tasks.append(Task(f"f{frame_index}.serial", serial, seg_names))
    return TaskGraph(tasks)


def build_x264_graph(result: EncodeResult, lag_fraction: float = 0.18) -> TaskGraph:
    """x264 frame-threading graph.

    Each frame is split into a "head" (the part another frame must wait
    for — ``lag_fraction`` of the frame) and a "tail"; frame *t+1*'s
    head depends on frame *t*'s head, so heads pipeline while tails
    overlap freely.
    """
    if not 0.0 < lag_fraction <= 1.0:
        raise SimulationError("lag_fraction must be in (0, 1]")
    frames = _records_by_frame(result)
    tasks: list[Task] = []
    for frame_index in sorted(frames):
        sb_work, serial = _frame_stage_work(frames[frame_index])
        work = sb_work + serial
        head = work * lag_fraction
        tail = work - head
        head_deps: tuple[str, ...] = ()
        if frame_index > 0 and frame_index - 1 in frames:
            head_deps = (f"f{frame_index - 1}.head",)
        tasks.append(Task(f"f{frame_index}.head", head, head_deps))
        tasks.append(
            Task(f"f{frame_index}.tail", tail, (f"f{frame_index}.head",))
        )
    return TaskGraph(tasks)


def build_x265_graph(
    result: EncodeResult, master_fraction: float = 0.68
) -> TaskGraph:
    """x265 wavefront + dominant-master graph.

    Per frame, ``master_fraction`` of the work forms a chain pinned to
    worker 0 (the frame thread: rate control, row launch, entropy,
    bookkeeping); the rest is split into wavefront row tasks each
    depending on the previous row's task and the master's launch step.
    Frames serialise on the master chain.
    """
    if not 0.0 <= master_fraction < 1.0:
        raise SimulationError("master_fraction must be in [0, 1)")
    frames = _records_by_frame(result)
    tasks: list[Task] = []
    previous_master: str | None = None
    for frame_index in sorted(frames):
        records = frames[frame_index]
        sb_work, serial = _frame_stage_work(records)
        work = sb_work + serial
        master_work = work * master_fraction
        launch = f"f{frame_index}.launch"
        deps = (previous_master,) if previous_master else ()
        tasks.append(
            Task(launch, master_work * 0.3, deps, affinity=0)
        )
        rows = records.get("superblock", [])
        row_work: dict[int, float] = defaultdict(float)
        for record in rows:
            row_work[record.row] += record.instructions
        share = (work - master_work) / max(sum(row_work.values()), 1.0)
        row_names = []
        for row in sorted(row_work):
            name = f"f{frame_index}.row{row}"
            # WPP lets row r run two CTUs behind row r-1; at whole-row
            # task granularity that overlap makes rows effectively
            # independent once the master has launched the frame.
            tasks.append(Task(name, row_work[row] * share, (launch,)))
            row_names.append(name)
        master = f"f{frame_index}.master"
        tasks.append(
            Task(
                master,
                master_work * 0.7,
                tuple([launch] + row_names),
                affinity=0,
            )
        )
        previous_master = master
    return TaskGraph(tasks)


def build_libaom_graph(result: EncodeResult, tiles: int = 4) -> TaskGraph:
    """libaom tile-threading graph: ``tiles`` column tasks per frame,
    frames serialised on the previous frame's completion."""
    if tiles < 1:
        raise SimulationError("tiles must be >= 1")
    frames = _records_by_frame(result)
    tasks: list[Task] = []
    previous_done: str | None = None
    for frame_index in sorted(frames):
        records = frames[frame_index]
        tile_work: dict[int, float] = defaultdict(float)
        cols = sorted({r.col for r in records.get("superblock", [])})
        col_to_tile = {c: (i * tiles) // max(len(cols), 1) for i, c in enumerate(cols)}
        for record in records.get("superblock", []):
            tile_work[col_to_tile[record.col]] += record.instructions
        tile_names = []
        for tile, work in sorted(tile_work.items()):
            name = f"f{frame_index}.tile{tile}"
            deps = (previous_done,) if previous_done else ()
            tasks.append(Task(name, work, deps))
            tile_names.append(name)
        _, serial = _frame_stage_work(records)
        done = f"f{frame_index}.done"
        tasks.append(Task(done, serial, tuple(tile_names)))
        previous_done = done
    return TaskGraph(tasks)


#: Builder registry keyed by encoder name.
GRAPH_BUILDERS: dict[str, Callable[[EncodeResult], TaskGraph]] = {
    "svt-av1": build_svt_av1_graph,
    "x264": build_x264_graph,
    "x265": build_x265_graph,
    "libaom": build_libaom_graph,
    # libvpx-vp9 threads like libaom (tile-based); the paper's §4.6
    # studies only the four encoders above, but the model is available.
    "libvpx-vp9": build_libaom_graph,
}


def build_graph(result: EncodeResult) -> TaskGraph:
    """Build the threading-model graph for the encode's codec."""
    try:
        builder = GRAPH_BUILDERS[result.codec]
    except KeyError:
        raise SimulationError(
            f"no threading model for codec {result.codec!r}"
        ) from None
    return builder(result)
