"""Zero-copy shared-memory data plane for pooled sweeps.

Every cell of a sweep grid encodes one of a handful of distinct proxy
videos, yet the pre-PR pooled path regenerated that video *inside each
worker, for every cell* — the synthetic generator dominated small-cell
sweeps and the pickle boundary shipped nothing reusable.  This module
publishes each distinct video's Y/U/V planes **once**, into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment, and hands
workers a tiny picklable :class:`ShmVideoHandle` (segment name plus
geometry).  Workers attach and reconstruct ``Video``/``Frame`` objects
whose planes are NumPy *views* over the shared buffer — zero copies on
either side of the process boundary.

Ownership and unlink rules (DESIGN.md "Shared-memory data plane"):

- the **parent** owns every segment.  :class:`ShmDataPlane` publishes,
  ref-counts and registers segments (in the run manifest when a run
  directory is active) and unlinks them all in ``close()`` — which the
  supervised dispatch loop runs in a ``finally``, so drains, crashes
  and pool rebuilds cannot leak ``/dev/shm`` entries;
- **workers** only ever attach.  Forked workers share the parent's
  resource tracker (their attach-registration is an idempotent no-op);
  spawned workers own a private tracker, so their attach is untracked
  immediately lest a worker exit unlink a segment it merely borrowed;
- attach views are **read-only**: cells from different workers map the
  same physical pages, so a codec writing to its input would corrupt
  every sibling cell.  The encoders never write input frames; the
  read-only mapping turns any future violation into a loud error
  instead of a silent cross-cell heisenbug.

Fallback matrix (resolved by :func:`shm_mode`):

======================  =============================================
mode                    video delivery to workers
======================  =============================================
``shm`` (default)       shared-memory segment, zero-copy attach
``pickle``              planes pickled inline into the cell job
                        (``REPRO_SHM_MODE=pickle``; the benchmark
                        suite uses it to measure the payload win)
``generate``            workers regenerate by clip name — the
                        pre-PR behaviour (``REPRO_NO_SHM=1``)
======================  =============================================

Publish failures (``/dev/shm`` full, platform without POSIX shm) fall
back to ``generate`` per video; attach failures inside a worker fall
back the same way per cell.  Every fallback is an event/counter, never
an error: the data plane changes how fast bytes move, never whether a
cell runs.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import ShmError
from ..obs.context import record_metric
from ..video.frame import Frame, Video

#: Environment kill-switch: any truthy value forces ``generate`` mode.
NO_SHM_ENV = "REPRO_NO_SHM"
#: Environment mode override: ``shm`` | ``pickle`` | ``generate``.
MODE_ENV = "REPRO_SHM_MODE"
#: Every segment name starts with this, so a leak scan (tests, CI) can
#: recognise ours without false positives from other tenants.
SEGMENT_PREFIX = "repro-shm-"

_MODES = ("shm", "pickle", "generate")


def shm_mode() -> str:
    """Effective video-delivery mode: kill-switch > mode env > shm."""
    if os.environ.get(NO_SHM_ENV, "").lower() in ("1", "true", "yes"):
        return "generate"
    mode = os.environ.get(MODE_ENV, "").lower() or "shm"
    if mode not in _MODES:
        raise ShmError(
            f"{MODE_ENV}={mode!r} is not one of {', '.join(_MODES)}"
        )
    return mode


def _segment_name() -> str:
    """A fresh segment name, recognisable and collision-free.

    The pid pins the owning parent (post-mortem triage of a leaked
    ``/dev/shm`` entry starts with "is that process alive?"); the
    token keeps concurrent sweeps in one process apart.
    """
    return f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"


@dataclass(frozen=True)
class ShmVideoHandle:
    """Picklable descriptor of one published video.

    Carries the segment name plus exactly the geometry needed to
    reconstruct the plane views; at ~100 bytes pickled it replaces
    megabytes of frame data on the job payload.

    Segment layout: the luma block ``(frames, height, width)`` uint8,
    then the U and V blocks ``(frames, height//2, width//2)`` each,
    all C-contiguous and densely packed in that order.
    """

    segment: str
    name: str
    fps: float
    frames: int
    width: int
    height: int

    @property
    def luma_bytes(self) -> int:
        return self.frames * self.height * self.width

    @property
    def chroma_bytes(self) -> int:
        return self.frames * (self.height // 2) * (self.width // 2)

    @property
    def total_bytes(self) -> int:
        return self.luma_bytes + 2 * self.chroma_bytes


@dataclass(frozen=True)
class InlineVideo:
    """Pickle-path twin of :class:`ShmVideoHandle`: planes ride along.

    The stacked arrays pickle as three dense buffers; ``to_video()``
    rebuilds per-frame views without further copies, so the cost is
    one serialise/deserialise of the raw planes per *cell* — exactly
    the overhead the shared-memory path exists to avoid, kept as the
    measurable baseline.
    """

    name: str
    fps: float
    y: np.ndarray                # (frames, h, w) uint8
    u: np.ndarray                # (frames, h//2, w//2) uint8
    v: np.ndarray                # (frames, h//2, w//2) uint8

    @classmethod
    def from_video(cls, video: Video) -> "InlineVideo":
        y, u, v = stack_planes(video)
        return cls(name=video.name, fps=video.fps, y=y, u=u, v=v)

    def to_video(self) -> Video:
        frames = [
            Frame(self.y[i], self.u[i], self.v[i], index=i)
            for i in range(self.y.shape[0])
        ]
        return Video(frames, fps=self.fps, name=self.name)


def stack_planes(video: Video) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense ``(frames, h, w)`` stacks of the Y, U and V planes."""
    y = np.stack([frame.y.data for frame in video.frames])
    u = np.stack([frame.u.data for frame in video.frames])
    v = np.stack([frame.v.data for frame in video.frames])
    return y, u, v


def publish_video(
    video: Video, segment: str | None = None
) -> tuple[ShmVideoHandle, shared_memory.SharedMemory]:
    """Copy ``video``'s planes into a fresh shared-memory segment.

    Returns the picklable handle plus the parent-side
    :class:`~multiprocessing.shared_memory.SharedMemory` object, which
    the caller owns (keep it referenced until ``unlink``).  Raises
    :class:`~repro.errors.ShmError` when the platform or ``/dev/shm``
    refuses — callers fall back to another delivery mode.
    """
    handle = ShmVideoHandle(
        segment=segment if segment is not None else _segment_name(),
        name=video.name,
        fps=video.fps,
        frames=video.num_frames,
        width=video.width,
        height=video.height,
    )
    try:
        shm = shared_memory.SharedMemory(
            name=handle.segment, create=True, size=handle.total_bytes
        )
    except (OSError, ValueError) as exc:
        raise ShmError(
            f"cannot create shared-memory segment for {video.name!r} "
            f"({handle.total_bytes} bytes): {exc}"
        ) from exc
    try:
        y, u, v = _plane_views(shm, handle, writeable=True)
        for i, frame in enumerate(video.frames):
            y[i] = frame.y.data
            u[i] = frame.u.data
            v[i] = frame.v.data
    except BaseException:
        shm.close()
        try:
            shm.unlink()
        except OSError:
            pass
        raise
    return handle, shm


def attach_video(handle: ShmVideoHandle) -> Video:
    """Attach to a published segment and rebuild the video, zero-copy.

    The returned frames' planes are read-only views over the shared
    buffer; the :class:`~multiprocessing.shared_memory.SharedMemory`
    object rides on the video (``video.shm``) so the mapping outlives
    every view.  Raises :class:`~repro.errors.ShmError` when the
    segment is gone or malformed — callers regenerate instead.
    """
    try:
        shm = shared_memory.SharedMemory(name=handle.segment)
    except (OSError, ValueError) as exc:
        raise ShmError(
            f"cannot attach segment {handle.segment!r} for video "
            f"{handle.name!r}: {exc}"
        ) from exc
    # CPython's resource tracker registers a POSIX segment on *attach*
    # as well as on create.  Forked workers inherit the parent's
    # tracker process, where registrations are a set, so the extra
    # register is a no-op and must NOT be undone (unregistering from
    # the shared tracker would strip the parent's own registration).
    # A *spawned* worker, however, starts its own tracker, which would
    # unlink the live segment when the worker exits — only there is
    # the attach registration a borrow to untrack.
    if (
        multiprocessing.parent_process() is not None
        and "fork" not in multiprocessing.get_all_start_methods()
    ):
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # noqa: BLE001 - tracker internals vary
            pass
    if shm.size < handle.total_bytes:
        shm.close()
        raise ShmError(
            f"segment {handle.segment!r} is {shm.size} bytes; video "
            f"{handle.name!r} needs {handle.total_bytes}"
        )
    y, u, v = _plane_views(shm, handle, writeable=False)
    frames = [
        Frame(y[i], u[i], v[i], index=i) for i in range(handle.frames)
    ]
    video = Video(frames, fps=handle.fps, name=handle.name)
    video.shm = shm  # keep the mapping alive as long as the video
    return video


def _plane_views(
    shm: shared_memory.SharedMemory,
    handle: ShmVideoHandle,
    *,
    writeable: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The three stacked plane arrays over a segment's buffer."""
    ch, cw = handle.height // 2, handle.width // 2
    y = np.ndarray(
        (handle.frames, handle.height, handle.width),
        dtype=np.uint8,
        buffer=shm.buf,
    )
    u = np.ndarray(
        (handle.frames, ch, cw),
        dtype=np.uint8,
        buffer=shm.buf,
        offset=handle.luma_bytes,
    )
    v = np.ndarray(
        (handle.frames, ch, cw),
        dtype=np.uint8,
        buffer=shm.buf,
        offset=handle.luma_bytes + handle.chroma_bytes,
    )
    if not writeable:
        for plane in (y, u, v):
            plane.flags.writeable = False
    return y, u, v


def video_from_payload(payload: "ShmVideoHandle | InlineVideo") -> Video:
    """Materialise a worker-side video from either delivery payload."""
    if isinstance(payload, ShmVideoHandle):
        return attach_video(payload)
    if isinstance(payload, InlineVideo):
        return payload.to_video()
    raise ShmError(
        f"unknown video payload type {type(payload).__name__}"
    )


class ShmDataPlane:
    """Parent-side registry of published segments for one sweep.

    ``publish`` memoises per ``(clip name, frame count)`` and
    ref-counts; ``release`` unlinks a segment once its last publisher
    lets go, and ``close`` unlinks everything unconditionally — the
    supervised dispatch loop calls it in a ``finally``, which is what
    makes the "no leaks on drain/crash/rebuild" guarantee hold.  When
    a run directory is given, the active segment names are registered
    in the run manifest (``run.json`` → ``shm_segments``) so a
    post-mortem of a hard-killed parent knows what to sweep up.
    """

    def __init__(self, run_dir: str | None = None) -> None:
        self.run_dir = run_dir
        self._segments: dict[
            tuple[str, int],
            tuple[ShmVideoHandle, shared_memory.SharedMemory, int],
        ] = {}

    def __enter__(self) -> "ShmDataPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def segment_names(self) -> list[str]:
        return [h.segment for h, _, _ in self._segments.values()]

    @property
    def published_bytes(self) -> int:
        """Total bytes currently held in shared memory."""
        return sum(h.total_bytes for h, _, _ in self._segments.values())

    def publish(self, video: Video) -> ShmVideoHandle:
        """Publish ``video`` (or bump the refcount of a prior publish)."""
        key = (video.name, video.num_frames)
        entry = self._segments.get(key)
        if entry is not None:
            handle, shm, refs = entry
            self._segments[key] = (handle, shm, refs + 1)
            return handle
        handle, shm = publish_video(video)
        self._segments[key] = (handle, shm, 1)
        record_metric("counter", "shm.segments.published")
        record_metric(
            "counter", "shm.bytes.published", handle.total_bytes
        )
        self._register()
        return handle

    def release(self, video_name: str, num_frames: int) -> None:
        """Drop one reference; the last one unlinks the segment."""
        key = (video_name, num_frames)
        entry = self._segments.get(key)
        if entry is None:
            return
        handle, shm, refs = entry
        if refs > 1:
            self._segments[key] = (handle, shm, refs - 1)
            return
        del self._segments[key]
        _destroy(shm)
        self._register()

    def close(self) -> None:
        """Unlink every segment regardless of refcounts (idempotent)."""
        for _, shm, _ in self._segments.values():
            _destroy(shm)
        self._segments.clear()
        self._register()

    def _register(self) -> None:
        """Mirror the active segment list into the run manifest."""
        if self.run_dir is not None:
            register_manifest_segments(self.run_dir, self.segment_names)


def _destroy(shm: shared_memory.SharedMemory) -> None:
    shm.close()
    try:
        shm.unlink()
    except (OSError, FileNotFoundError):
        pass


def register_manifest_segments(run_dir: str, names: list[str]) -> None:
    """Record the live shm segments in ``run.json`` (best effort).

    Read-modify-write of the advisory manifest: the list is current
    while segments are mapped and empties on unlink, so a manifest
    that still names segments after the run is the signature of a
    parent killed before its ``finally`` — exactly what a leak sweep
    wants to know.  Like every manifest write, failure is ignored: a
    sweep must never die because its description could not be saved.
    """
    path = os.path.join(run_dir, "run.json")
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if not isinstance(manifest, dict):
            return
    except FileNotFoundError:
        manifest = {}
    except (OSError, json.JSONDecodeError):
        return
    manifest["shm_segments"] = sorted(names)
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names under ``/dev/shm`` matching ``prefix`` (tests, CI sweeps).

    Empty on platforms without a ``/dev/shm`` tmpfs — the leak check
    is then vacuous rather than wrong.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(prefix))
