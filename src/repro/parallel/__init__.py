"""Encoder thread-scaling models (the paper's §4.6 study)."""

from .models import (
    GRAPH_BUILDERS,
    build_graph,
    build_libaom_graph,
    build_svt_av1_graph,
    build_x264_graph,
    build_x265_graph,
)
from .scaling import (
    ScalingCurve,
    ScalingPoint,
    thread_scaling,
    topdown_with_threads,
)
from .tasks import ScheduleResult, Task, TaskGraph

__all__ = [
    "GRAPH_BUILDERS",
    "ScalingCurve",
    "ScalingPoint",
    "ScheduleResult",
    "Task",
    "TaskGraph",
    "build_graph",
    "build_libaom_graph",
    "build_svt_av1_graph",
    "build_x264_graph",
    "build_x265_graph",
    "thread_scaling",
    "topdown_with_threads",
]
