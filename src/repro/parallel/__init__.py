"""Parallel execution: thread-scaling models (§4.6) and the sweep pool.

Two unrelated kinds of parallelism live here: the paper's *modelled*
encoder thread scaling (:mod:`repro.parallel.scaling`,
:mod:`repro.parallel.models`) and the harness's *actual* process-pool
sweep execution (:mod:`repro.parallel.pool`).
"""

from .models import (
    GRAPH_BUILDERS,
    build_graph,
    build_libaom_graph,
    build_svt_av1_graph,
    build_x264_graph,
    build_x265_graph,
)
from .pool import (
    CellSpec,
    ParallelConfig,
    activate_parallel,
    current_parallel,
    execute_cells,
    resolve_cache_dir,
    resolve_supervision,
    resolve_workers,
)
from .shm import (
    InlineVideo,
    ShmDataPlane,
    ShmVideoHandle,
    attach_video,
    leaked_segments,
    publish_video,
    shm_mode,
)
from .scaling import (
    ScalingCurve,
    ScalingPoint,
    thread_scaling,
    topdown_with_threads,
)
from .supervise import (
    HeartbeatWriter,
    Lease,
    SupervisionConfig,
    drain_guard,
    drain_requested,
    last_beat,
    request_drain,
)
from .tasks import ScheduleResult, Task, TaskGraph

__all__ = [
    "GRAPH_BUILDERS",
    "CellSpec",
    "HeartbeatWriter",
    "InlineVideo",
    "Lease",
    "ParallelConfig",
    "ShmDataPlane",
    "ShmVideoHandle",
    "ScalingCurve",
    "ScalingPoint",
    "ScheduleResult",
    "SupervisionConfig",
    "Task",
    "TaskGraph",
    "activate_parallel",
    "attach_video",
    "build_graph",
    "build_libaom_graph",
    "build_svt_av1_graph",
    "build_x264_graph",
    "build_x265_graph",
    "current_parallel",
    "drain_guard",
    "drain_requested",
    "execute_cells",
    "last_beat",
    "leaked_segments",
    "publish_video",
    "request_drain",
    "shm_mode",
    "resolve_cache_dir",
    "resolve_supervision",
    "resolve_workers",
    "thread_scaling",
    "topdown_with_threads",
]
