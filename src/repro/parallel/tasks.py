"""Task graphs and the list scheduler for thread-scaling simulation.

The paper's §4.6 measures wall-clock speedup of four encoders from 1
to 8 threads.  Thread scaling of an encoder is a property of its *task
decomposition* — which units of work exist and which depend on which —
so the reproduction models each encoder as an explicit task DAG (built
in :mod:`repro.parallel.models` from the real per-superblock/per-stage
instruction counts of an instrumented encode) and schedules it on N
simulated workers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..obs.span import trace_span
from ..resilience.faults import fault_point


@dataclass
class Task:
    """One schedulable unit of encoder work.

    Parameters
    ----------
    name:
        Unique identifier.
    duration:
        Cost in arbitrary work units (we use instruction counts).
    deps:
        Names of tasks that must finish first.
    affinity:
        Optional worker pinning (models a dedicated master thread).
    """

    name: str
    duration: float
    deps: tuple[str, ...] = ()
    affinity: int | None = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"task {self.name}: negative duration")


@dataclass
class ScheduleResult:
    """Outcome of scheduling a graph on N workers."""

    makespan: float
    worker_busy: list[float]
    task_finish: dict[str, float] = field(default_factory=dict)

    @property
    def total_work(self) -> float:
        """Sum of all task durations."""
        return sum(self.worker_busy)

    @property
    def utilisation(self) -> float:
        """Busy fraction across workers over the makespan."""
        if self.makespan <= 0:
            return 1.0
        return self.total_work / (self.makespan * len(self.worker_busy))


class TaskGraph:
    """A DAG of :class:`Task` objects."""

    def __init__(self, tasks: list[Task]) -> None:
        self.tasks = {task.name: task for task in tasks}
        if len(self.tasks) != len(tasks):
            raise SimulationError("duplicate task names in graph")
        for task in tasks:
            for dep in task.deps:
                if dep not in self.tasks:
                    raise SimulationError(
                        f"task {task.name} depends on unknown task {dep}"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        state: dict[str, int] = {}

        def visit(name: str) -> None:
            if state.get(name) == 1:
                raise SimulationError(f"task graph has a cycle through {name}")
            if state.get(name) == 2:
                return
            state[name] = 1
            for dep in self.tasks[name].deps:
                visit(dep)
            state[name] = 2

        for name in self.tasks:
            visit(name)

    @property
    def total_work(self) -> float:
        """Serial execution time (1-thread makespan lower bound)."""
        return sum(task.duration for task in self.tasks.values())

    def critical_path(self) -> float:
        """Longest dependency chain (infinite-thread makespan)."""
        memo: dict[str, float] = {}

        def finish(name: str) -> float:
            if name in memo:
                return memo[name]
            task = self.tasks[name]
            start = max((finish(d) for d in task.deps), default=0.0)
            memo[name] = start + task.duration
            return memo[name]

        return max(finish(name) for name in self.tasks) if self.tasks else 0.0

    def schedule(self, workers: int) -> ScheduleResult:
        """Greedy list-schedule on ``workers`` identical workers.

        Ready tasks are dispatched longest-first (a standard LPT
        heuristic); pinned tasks wait for their worker.
        """
        if workers < 1:
            raise SimulationError("need at least one worker")
        with trace_span("schedule", workers=workers, tasks=len(self.tasks)):
            return self._schedule(workers)

    def _schedule(self, workers: int) -> ScheduleResult:
        fault_point(f"sim:schedule:{workers}:{len(self.tasks)}")
        indegree = {n: len(t.deps) for n, t in self.tasks.items()}
        dependants: dict[str, list[str]] = {n: [] for n in self.tasks}
        for name, task in self.tasks.items():
            for dep in task.deps:
                dependants[dep].append(name)

        ready: list[tuple[float, str]] = [
            (-self.tasks[n].duration, n) for n, d in indegree.items() if d == 0
        ]
        heapq.heapify(ready)
        pinned_ready: dict[int, list[tuple[float, str]]] = {}

        worker_free = [0.0] * workers
        worker_busy = [0.0] * workers
        finish_heap: list[tuple[float, int, str]] = []  # (time, worker, task)
        task_finish: dict[str, float] = {}
        now = 0.0
        remaining = len(self.tasks)

        def dispatch() -> None:
            # Pinned tasks first (they cannot migrate).
            for worker, queue in list(pinned_ready.items()):
                while queue and worker_free[worker] <= now:
                    _, name = heapq.heappop(queue)
                    task = self.tasks[name]
                    start = max(now, worker_free[worker])
                    end = start + task.duration
                    worker_free[worker] = end
                    worker_busy[worker] += task.duration
                    heapq.heappush(finish_heap, (end, worker, name))
                if not queue:
                    del pinned_ready[worker]
            while ready:
                free_workers = [
                    w for w in range(workers) if worker_free[w] <= now
                ]
                if not free_workers:
                    break
                _, name = heapq.heappop(ready)
                worker = min(free_workers, key=lambda w: worker_free[w])
                task = self.tasks[name]
                end = now + task.duration
                worker_free[worker] = end
                worker_busy[worker] += task.duration
                heapq.heappush(finish_heap, (end, worker, name))

        def make_ready(name: str) -> None:
            task = self.tasks[name]
            entry = (-task.duration, name)
            if task.affinity is not None:
                worker = task.affinity % workers
                heapq.heappush(pinned_ready.setdefault(worker, []), entry)
            else:
                heapq.heappush(ready, entry)

        dispatch()
        while remaining:
            if not finish_heap:
                raise SimulationError("scheduler deadlock (cycle or bad pin)")
            now, _worker, name = heapq.heappop(finish_heap)
            task_finish[name] = now
            remaining -= 1
            for dependant in dependants[name]:
                indegree[dependant] -= 1
                if indegree[dependant] == 0:
                    make_ready(dependant)
            dispatch()

        return ScheduleResult(
            makespan=now, worker_busy=worker_busy, task_finish=task_finish
        )
