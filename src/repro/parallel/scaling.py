"""Thread-scaling study and multi-threaded top-down (Figs. 12-16).

:func:`thread_scaling` replays one encode's task graph on 1..N
simulated workers and reports wall-clock speedups.

:func:`topdown_with_threads` produces the paper's Fig. 16: how the
top-down profile shifts as threads are added.  The shift has two
physical sources the model captures:

- **shared-LLC contention**: concurrently running workers displace
  each other's lines, inflating backend-memory stalls in proportion to
  how much *overlapping* data the threads touch.  Tile/segment-
  parallel encoders (SVT-AV1, libaom, x264 frames) give workers
  disjoint working sets, so contention is mild; x265's helper threads
  operate inside the master's frame and share everything.
- **synchronisation stalls**: x265's wavefront helpers spin on row
  progress flags (memory polling), which the PMU books as backend-
  bound cycles; the wait share comes from the actual schedule's idle
  time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codecs.base import EncodeResult
from ..errors import SimulationError
from ..uarch.topdown import TopDown
from .models import build_graph
from .tasks import TaskGraph


@dataclass(frozen=True)
class ScalingPoint:
    """Speedup and utilisation at one thread count."""

    threads: int
    makespan: float
    speedup: float
    utilisation: float


@dataclass(frozen=True)
class ScalingCurve:
    """Speedup curve for one encoder configuration."""

    codec: str
    points: list[ScalingPoint]

    def speedup_at(self, threads: int) -> float:
        """Speedup at a specific thread count."""
        for point in self.points:
            if point.threads == threads:
                return point.speedup
        raise SimulationError(f"no scaling point for {threads} threads")


#: Working-set overlap between concurrent workers, per encoder (the
#: LLC-contention coefficient).  x265 helpers share the master's frame.
_CONTENTION = {
    "svt-av1": 0.04,
    "libaom": 0.05,
    "libvpx-vp9": 0.05,
    "x264": 0.06,
    "x265": 0.30,
}

#: Whether idle workers spin on memory flags (booked as backend).
_SPIN_WAIT = {"x265": True}


def thread_scaling(
    result: EncodeResult,
    max_threads: int = 8,
    graph: TaskGraph | None = None,
) -> ScalingCurve:
    """Schedule the encode's task graph on 1..max_threads workers."""
    if max_threads < 1:
        raise SimulationError("max_threads must be >= 1")
    if graph is None:
        graph = build_graph(result)
    base = graph.schedule(1).makespan
    points = []
    for threads in range(1, max_threads + 1):
        schedule = graph.schedule(threads)
        points.append(
            ScalingPoint(
                threads=threads,
                makespan=schedule.makespan,
                speedup=base / schedule.makespan if schedule.makespan else 1.0,
                utilisation=schedule.utilisation,
            )
        )
    return ScalingCurve(codec=result.codec, points=points)


def topdown_with_threads(
    single_thread: TopDown,
    codec: str,
    threads: int,
    utilisation: float | None = None,
) -> TopDown:
    """Adjust a single-thread top-down profile for ``threads`` workers.

    Parameters
    ----------
    single_thread:
        The 1-thread profile from the core model.
    codec:
        Encoder name (selects contention/spin behaviour).
    threads:
        Concurrent worker count.
    utilisation:
        Scheduler utilisation at this thread count; defaults to 1
        (perfectly busy workers).  Idle time becomes backend (spin) or
        is discounted (sleeping workers do not sample) depending on the
        encoder's synchronisation style.
    """
    if threads < 1:
        raise SimulationError("threads must be >= 1")
    contention = _CONTENTION.get(codec, 0.1)
    spin = _SPIN_WAIT.get(codec, False)
    util = 1.0 if utilisation is None else max(min(utilisation, 1.0), 1e-3)

    # LLC contention inflates backend share.
    extra_backend = single_thread.backend_memory * contention * (threads - 1)
    # Spin-waiting helpers book their idle time as backend-memory.
    if spin:
        extra_backend += (1.0 - util) * 0.9

    extra = min(extra_backend, 0.95 - single_thread.backend)
    if extra <= 0:
        return single_thread
    # The extra backend slots displace retiring and frontend slots
    # proportionally (total stays 1).
    shrink = 1.0 - extra / (
        single_thread.retiring
        + single_thread.frontend
        + single_thread.bad_speculation
    )
    return TopDown(
        retiring=single_thread.retiring * shrink,
        bad_speculation=single_thread.bad_speculation * shrink,
        frontend=single_thread.frontend * shrink,
        backend=single_thread.backend + extra,
        backend_memory=single_thread.backend_memory + extra,
        backend_core=single_thread.backend_core,
        frontend_latency=single_thread.frontend_latency * shrink,
        frontend_bandwidth=single_thread.frontend_bandwidth * shrink,
    )
