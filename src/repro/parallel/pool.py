"""Parallel sweep execution: fan cells over a process pool.

One characterization cell is CPU-bound, pure Python and completely
independent of every other cell, which makes the sweep grids of the
paper's figures embarrassingly parallel.  :func:`execute_cells` is the
one engine both execution modes share:

- **serial** (``workers=1``, the default) iterates the specs exactly
  as :func:`repro.core.sweeps.sweep_cells` always has — same
  ``sweep.cell`` span, same quarantine-drops-the-cell semantics;
- **pooled** (``workers>1``) dispatches each not-yet-computed cell to
  a :class:`~concurrent.futures.ProcessPoolExecutor` worker.  The
  worker reconstructs a :class:`~repro.core.session.Session` and runs
  *the same* ``Session.report`` code path the serial loop runs — the
  full retry/fault/timeout/quarantine stack executes inside the
  worker — then ships the serialized result home together with its
  telemetry (spans, events, metrics snapshot).

The parent re-parents each worker's spans under a coordinating
``sweep.cell`` span, rebased onto the parent's monotonic clock via a
``(wall, monotonic)`` anchor pair captured on both sides, so the
Chrome-trace export shows true cross-process concurrency on one
timeline.  Completed cells are appended to the parent's run ledger
(resume keeps working), and worker metrics fold into the parent's
registry without double-counting: only the worker bumps the per-cell
counters, the parent merely merges.

Worker processes are forked, so they inherit the parent's imports and
environment; only the per-cell job (spec, machine, policies, cache
location) crosses the pickle boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from ..cache import ResultCache
from ..clock import SYSTEM_CLOCK
from ..core.serialize import from_jsonable, to_jsonable
from ..core.session import CellSpec, RunKey, Session
from ..errors import ExperimentError, QuarantinedCellError
from ..obs import events as obs_events
from ..obs.context import ObsContext, activate_obs, current_obs
from ..obs.events import Event
from ..obs.span import ERROR, OK as SPAN_OK, active_tracer, trace_span
from ..resilience.executor import (
    CellOutcome,
    ExecutionPolicy,
    ResilienceGuard,
)
from ..resilience.ledger import OK, QUARANTINED

#: Environment override for the default worker count (0 = all cores).
_ENV_WORKERS = "REPRO_WORKERS"


@dataclass(frozen=True)
class ParallelConfig:
    """One experiment run's parallelism/caching knobs.

    Installed by ``run_experiment`` via :func:`activate_parallel`, read
    by :func:`resolve_workers`/:func:`resolve_cache_dir` so the knobs
    reach every sweep without threading arguments through each
    experiment module (the same ambient-context pattern as the
    resilience and observability contexts).
    """

    workers: int | None = None       # None -> env -> 1; 0 -> all cores
    cache_dir: str | None = None     # None -> env -> no cache
    cache_salt: str = ""


_current: ParallelConfig | None = None


def current_parallel() -> ParallelConfig | None:
    """The config installed by the innermost :func:`activate_parallel`."""
    return _current


@contextmanager
def activate_parallel(config: ParallelConfig) -> Iterator[ParallelConfig]:
    """Install ``config`` for the duration of one experiment run."""
    global _current
    previous = _current
    _current = config
    try:
        yield config
    finally:
        _current = previous


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit > ambient > env > 1.

    ``0`` anywhere in the chain means "one worker per core".
    """
    if workers is None and _current is not None:
        workers = _current.workers
    if workers is None:
        raw = os.environ.get(_ENV_WORKERS, "")
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ExperimentError(
                    f"{_ENV_WORKERS}={raw!r} is not an integer"
                ) from None
    if workers is None:
        return 1
    if workers < 0:
        raise ExperimentError(f"worker count must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def resolve_cache_dir(cache_dir: str | None = None) -> str | None:
    """Effective cache directory: explicit > ambient > env > disabled."""
    if cache_dir is None and _current is not None:
        cache_dir = _current.cache_dir
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    return cache_dir


def run_spec(session: Session, spec: CellSpec) -> Any:
    """Execute one grid point — the single cell-execution function.

    Both the serial loop and every pool worker funnel through this
    (and thus through ``Session.report``), so quarantine handling, span
    attributes and ledger records cannot diverge between modes.
    """
    return session.report(spec.codec, spec.video, spec.crf, spec.preset)


# -- worker side -----------------------------------------------------


@dataclass(frozen=True)
class _CellJob:
    """Everything a worker needs to execute one cell, picklable."""

    spec: CellSpec
    machine: Any
    num_frames: int | None
    policy: ExecutionPolicy | None
    experiment_id: str
    cache_dir: str | None
    cache_salt: str


def _worker_cell(job: _CellJob) -> dict[str, Any]:
    """Run one cell in a pool worker; ship result + telemetry home.

    Runs under a fresh :class:`ObsContext` (the fork inherited the
    parent's ambient collectors, which must not be touched from
    another process) and, when the parent runs guarded, a fresh
    ledger-less :class:`ResilienceGuard` carrying the parent's retry/
    timeout/fault policies — checkpointing stays with the parent.
    """
    obs = ObsContext()
    anchor_wall = time.time()
    anchor_mono = obs.clock.monotonic()
    session = Session(machine=job.machine, num_frames=job.num_frames)
    if job.policy is not None:
        session.guard = ResilienceGuard(job.policy, job.experiment_id)
    if job.cache_dir:
        session.cache = ResultCache(job.cache_dir, salt=job.cache_salt)
    key = RunKey(
        job.spec.codec, job.spec.video, job.spec.crf, job.spec.preset,
        job.num_frames,
    )
    status, payload, error = OK, None, None
    with activate_obs(obs):
        cell_start = obs.clock.monotonic()
        try:
            payload = to_jsonable(run_spec(session, job.spec))
        except QuarantinedCellError as exc:
            status = QUARANTINED
            error = f"{type(exc.cause).__name__}: {exc.cause}"
        cell_end = obs.clock.monotonic()
    outcome = (
        session.guard.outcomes[-1]
        if session.guard is not None and session.guard.outcomes
        else None
    )
    return {
        "key": session.cell_key(key),
        "status": status,
        "payload": payload,
        "error": error,
        "attempts": outcome.attempts if outcome is not None else 1,
        "elapsed": (
            outcome.elapsed_seconds
            if outcome is not None
            else cell_end - cell_start
        ),
        "cell_start": cell_start,
        "cell_end": cell_end,
        "anchors": {"wall": anchor_wall, "mono": anchor_mono},
        "spans": [span.to_jsonable() for span in obs.tracer.spans],
        "events": [event.to_jsonable() for event in obs.events.events],
        "metrics": obs.metrics.snapshot(),
        "pid": os.getpid(),
    }


# -- parent side -----------------------------------------------------


def _worker_policy(guard: ResilienceGuard | None) -> ExecutionPolicy | None:
    """The parent's policy, rebuilt for in-worker execution.

    The ledger stays with the parent (workers get ``ledger_path=None``)
    and the fault plan is resolved *here* and shipped explicitly, so
    workers do not re-read the environment.  Per-site fault hit
    counters stay correct because each site is dispatched to exactly
    one worker.
    """
    if guard is None:
        return None
    base = guard.policy
    return ExecutionPolicy(
        retry=base.retry,
        cell_timeout=base.cell_timeout,
        ledger_path=None,
        resume=False,
        faults=base.fault_plan(),
    )


def _merge_result(
    session: Session,
    spec: CellSpec,
    key: RunKey,
    index: int,
    result: dict[str, Any],
    *,
    offset: float,
    thread_rows: dict[tuple[int, int], int],
) -> None:
    """Adopt one worker's result: report, ledger, spans, metrics."""
    guard = session.guard
    if result["status"] == OK:
        report = from_jsonable(result["payload"])
        session._reports[key] = report
        if guard is not None:
            guard.record_remote(
                CellOutcome(
                    key=result["key"],
                    status=OK,
                    attempts=result["attempts"],
                    elapsed_seconds=result["elapsed"],
                ),
                payload=result["payload"],
            )
    else:
        session._quarantined[key] = QuarantinedCellError(
            result["key"], RuntimeError(result["error"])
        )
        if guard is not None:
            guard.record_remote(
                CellOutcome(
                    key=result["key"],
                    status=QUARANTINED,
                    attempts=result["attempts"],
                    elapsed_seconds=result["elapsed"],
                    error=result["error"],
                )
            )

    obs = current_obs()
    tracer = active_tracer()
    if tracer is not None:
        # One synthetic timeline row per (worker pid, worker thread),
        # stable across cells, so the Chrome trace shows each worker as
        # its own concurrent lane.
        def row(local_tid: int) -> int:
            rid = thread_rows.get((result["pid"], local_tid))
            if rid is None:
                rid = thread_rows[(result["pid"], local_tid)] = (
                    tracer.synthetic_thread()
                )
            return rid

        thread_map = {
            tid: row(tid)
            for tid in sorted(
                {record.get("thread", 0) for record in result["spans"]} | {0}
            )
        }
        current = tracer.current()
        coordinator = tracer.record_span(
            "sweep.cell",
            result["cell_start"] + offset,
            result["cell_end"] + offset,
            parent_id=current.span_id if current is not None else None,
            thread=thread_map[0],
            status=SPAN_OK if result["status"] == OK else ERROR,
            error=(
                None
                if result["status"] == OK
                else f"QuarantinedCellError: {result['error']}"
            ),
            point=str(spec),
            index=index,
            worker=result["pid"],
        )
        tracer.graft(
            result["spans"],
            parent_id=coordinator.span_id,
            offset=offset,
            thread_map=thread_map,
        )
    if obs is not None:
        for record in result["events"]:
            # Append rebased copies directly: the worker already
            # mirrored any warning to the (shared) stderr.
            obs.events.events.append(
                Event(
                    kind=record["kind"],
                    message=record["message"],
                    time=record["time"] + offset,
                    level=record["level"],
                    fields=dict(record["fields"]),
                )
            )
        obs.metrics.merge_snapshot(result["metrics"])


def _execute_serial(
    session: Session, specs: list[CellSpec]
) -> list[Any | None]:
    """The ``workers=1`` engine: the classic sweep loop, spec-driven."""
    results: list[Any | None] = []
    for index, spec in enumerate(specs):
        try:
            with trace_span("sweep.cell", point=str(spec), index=index):
                results.append(run_spec(session, spec))
        except QuarantinedCellError:
            results.append(None)
    return results


def _execute_pooled(
    session: Session, specs: list[CellSpec], workers: int
) -> list[Any | None]:
    """Fan uncomputed cells over a process pool; merge deterministically."""
    parent_wall = time.time()
    parent_mono = SYSTEM_CLOCK.monotonic()
    guard = session.guard
    keys = [
        RunKey(s.codec, s.video, s.crf, s.preset, session.num_frames)
        for s in specs
    ]

    pending: dict[RunKey, tuple[int, CellSpec]] = {}
    for index, (spec, key) in enumerate(zip(specs, keys)):
        if (
            key in session._reports
            or key in session._quarantined
            or key in pending
        ):
            continue
        if guard is not None and guard.is_resumable(session.cell_key(key)):
            # Replay from the ledger in the parent: cheap, and the
            # RESUMED bookkeeping stays identical to the serial path.
            with trace_span("sweep.cell", point=str(spec), index=index):
                run_spec(session, spec)
            continue
        pending[key] = (index, spec)

    if pending:
        policy = _worker_policy(guard)
        cache_dir = session.cache.root if session.cache is not None else None
        cache_salt = session.cache.salt if session.cache is not None else ""
        experiment_id = guard.experiment_id if guard is not None else ""
        worker_count = min(workers, len(pending))
        obs_events.emit(
            "pool.start",
            f"dispatching {len(pending)} cell(s) over "
            f"{worker_count} worker(s)",
            cells=len(pending),
            workers=worker_count,
        )
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        thread_rows: dict[tuple[int, int], int] = {}
        with ProcessPoolExecutor(
            max_workers=worker_count, mp_context=context
        ) as pool:
            futures = {
                pool.submit(
                    _worker_cell,
                    _CellJob(
                        spec=spec,
                        machine=session.machine,
                        num_frames=session.num_frames,
                        policy=policy,
                        experiment_id=experiment_id,
                        cache_dir=cache_dir,
                        cache_salt=cache_salt,
                    ),
                ): key
                for key, (index, spec) in pending.items()
            }
            for future in as_completed(futures):
                key = futures[future]
                index, spec = pending[key]
                result = future.result()
                offset = (
                    parent_mono
                    - result["anchors"]["mono"]
                    + result["anchors"]["wall"]
                    - parent_wall
                )
                _merge_result(
                    session, spec, key, index, result,
                    offset=offset, thread_rows=thread_rows,
                )
        obs_events.emit(
            "pool.done",
            f"pool completed {len(pending)} cell(s)",
            cells=len(pending),
        )

    # Merged output preserves the caller's point order exactly;
    # quarantined cells surface as None, mirroring the serial drop.
    return [
        None if key in session._quarantined else session._reports.get(key)
        for key in keys
    ]


def execute_cells(
    session: Session,
    specs: Iterable[CellSpec | tuple],
    workers: int | None = None,
) -> list[Any | None]:
    """Execute a batch of grid points serially or over a process pool.

    Returns one entry per input spec, in input order: the cell's
    :class:`~repro.uarch.perfcounters.PerfReport`, or ``None`` where
    the cell was quarantined (callers drop those points, exactly as
    :func:`~repro.core.sweeps.sweep_cells` does).
    """
    normalised = [CellSpec.of(spec) for spec in specs]
    count = resolve_workers(workers)
    if count <= 1 or len(normalised) <= 1:
        return _execute_serial(session, normalised)
    return _execute_pooled(session, normalised, count)
