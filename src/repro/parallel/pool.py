"""Parallel sweep execution: fan cells over a process pool.

One characterization cell is CPU-bound, pure Python and completely
independent of every other cell, which makes the sweep grids of the
paper's figures embarrassingly parallel.  :func:`execute_cells` is the
one engine both execution modes share:

- **serial** (``workers=1``, the default) iterates the specs exactly
  as :func:`repro.core.sweeps.sweep_cells` always has — same
  ``sweep.cell`` span, same quarantine-drops-the-cell semantics;
- **pooled** (``workers>1``) dispatches each not-yet-computed cell to
  a :class:`~concurrent.futures.ProcessPoolExecutor` worker.  The
  worker reconstructs a :class:`~repro.core.session.Session` and runs
  *the same* ``Session.report`` code path the serial loop runs — the
  full retry/fault/timeout/quarantine stack executes inside the
  worker — then ships the serialized result home together with its
  telemetry (spans, events, metrics snapshot).

The parent re-parents each worker's spans under a coordinating
``sweep.cell`` span, rebased onto the parent's monotonic clock via a
``(wall, monotonic)`` anchor pair captured on both sides, so the
Chrome-trace export shows true cross-process concurrency on one
timeline.  Completed cells are appended to the parent's run ledger
(resume keeps working), and worker metrics fold into the parent's
registry without double-counting: only the worker bumps the per-cell
counters, the parent merely merges.

Worker processes are forked, so they inherit the parent's imports and
environment; only the per-cell job (spec, machine, policies, cache
location) crosses the pickle boundary.

The pool is *supervised* (see :mod:`repro.parallel.supervise`): every
dispatch takes a lease in the parent's ledger, workers heartbeat to
per-cell sidecar files, and the parent's dispatch loop detects broken
pools, dead workers and stalled leases, rebuilds the pool, and
re-dispatches only the lost cells — repeat offenders are poisoned
into quarantine with a :class:`~repro.errors.WorkerCrashError` instead
of crashing the sweep a third time.  SIGINT/SIGTERM drain gracefully:
in-flight cells finish, the ledger stays resumable, and the run exits
through :class:`~repro.errors.SweepInterruptedError`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import signal as _signal
import tempfile
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from ..cache import ResultCache
from ..clock import SYSTEM_CLOCK
from ..core.serialize import from_jsonable, to_jsonable
from ..core.session import CellSpec, RunKey, Session
from ..errors import (
    ExperimentError,
    QuarantinedCellError,
    ShmError,
    SweepInterruptedError,
    VideoError,
    WorkerCrashError,
)
from ..obs import events as obs_events
from ..obs.context import ObsContext, activate_obs, current_obs, record_metric
from ..obs.events import Event
from ..obs.span import ERROR, OK as SPAN_OK, active_tracer, trace_span
from ..obs.telemetry import heartbeat_dir, open_sink, telemetry_dir
from ..resilience.executor import (
    CellOutcome,
    ExecutionPolicy,
    ResilienceGuard,
)
from ..resilience.ledger import OK, QUARANTINED
from .shm import InlineVideo, ShmDataPlane, shm_mode
from .supervise import (
    HeartbeatWriter,
    Lease,
    SupervisionConfig,
    drain_guard,
    drain_requested,
)

#: Environment override for the default worker count (0 = all cores).
_ENV_WORKERS = "REPRO_WORKERS"
#: Environment override for CPU-affinity worker placement.
_ENV_AFFINITY = "REPRO_AFFINITY"
#: Environment overrides for the supervisor's knobs.
_ENV_HEARTBEAT = "REPRO_HEARTBEAT_INTERVAL"
_ENV_RESTARTS = "REPRO_MAX_WORKER_RESTARTS"
_ENV_MISSES = "REPRO_HEARTBEAT_MISSES"
_ENV_CRASHES = "REPRO_MAX_CELL_CRASHES"


@dataclass(frozen=True)
class ParallelConfig:
    """One experiment run's parallelism/caching knobs.

    Installed by ``run_experiment`` via :func:`activate_parallel`, read
    by :func:`resolve_workers`/:func:`resolve_cache_dir` so the knobs
    reach every sweep without threading arguments through each
    experiment module (the same ambient-context pattern as the
    resilience and observability contexts).
    """

    workers: int | str | None = None  # None -> env -> 1; "auto" -> cores
    cache_dir: str | None = None     # None -> env -> no cache
    cache_salt: str = ""
    #: Supervision knobs; ``None`` falls through env to the defaults.
    heartbeat_interval: float | None = None
    max_worker_restarts: int | None = None
    #: Run directory: when set, heartbeat sidecars move from a
    #: tempdir to ``<run-dir>/heartbeats/`` (and survive the run for
    #: ``repro status``) and every worker streams telemetry samples
    #: into ``<run-dir>/telemetry/``.
    run_dir: str | None = None
    #: Pin each pool worker to a distinct core set
    #: (``os.sched_setaffinity``); ``None`` falls through the env.
    affinity: bool | None = None

    def __post_init__(self) -> None:
        # Reject nonsense at construction, not deep inside a sweep.
        # (The historical "0 means one per core" special case parsed
        # differently at every layer; 0 is now an error everywhere and
        # "auto" is the one spelling of one-worker-per-core.)
        _check_workers(self.workers)


_current: ParallelConfig | None = None


def current_parallel() -> ParallelConfig | None:
    """The config installed by the innermost :func:`activate_parallel`."""
    return _current


@contextmanager
def activate_parallel(config: ParallelConfig) -> Iterator[ParallelConfig]:
    """Install ``config`` for the duration of one experiment run."""
    global _current
    previous = _current
    _current = config
    try:
        yield config
    finally:
        _current = previous


#: The one spelling of "one worker per core" at every layer.
WORKERS_AUTO = "auto"


def _check_workers(workers: int | str | None) -> int | str | None:
    """Validate a worker-count setting without resolving it.

    Accepts ``None`` (inherit), ``"auto"`` (one per core) or a
    positive integer; everything else — including the historical
    ``0``, which different layers used to read as "auto", "serial" or
    "invalid" depending on the code path — raises up front.
    """
    if workers is None:
        return None
    if isinstance(workers, str):
        if workers.strip().lower() == WORKERS_AUTO:
            return WORKERS_AUTO
        raise ExperimentError(
            f"worker count {workers!r} is not an integer or 'auto'"
        )
    if isinstance(workers, bool) or workers < 1:
        raise ExperimentError(
            f"worker count must be >= 1, got {workers!r} "
            f"(use 'auto' for one worker per core)"
        )
    return workers


def resolve_workers(workers: int | str | None = None) -> int:
    """Effective worker count: explicit > ambient > env > 1.

    ``"auto"`` anywhere in the chain means "one worker per core";
    ``0`` is an error everywhere (it used to silently mean auto here
    while the CLI documented it and ``ParallelConfig`` ignored it —
    three layers, three semantics).
    """
    if workers is None and _current is not None:
        workers = _current.workers
    if workers is None:
        raw = os.environ.get(_ENV_WORKERS, "")
        if raw:
            if raw.strip().lower() == WORKERS_AUTO:
                workers = WORKERS_AUTO
            else:
                try:
                    workers = int(raw)
                except ValueError:
                    raise ExperimentError(
                        f"{_ENV_WORKERS}={raw!r} is not an integer or "
                        f"'auto'"
                    ) from None
    if workers is None:
        return 1
    workers = _check_workers(workers)
    if workers == WORKERS_AUTO:
        return os.cpu_count() or 1
    return workers


_AFFINITY_TRUE = frozenset({"1", "true", "yes", "on"})
_AFFINITY_FALSE = frozenset({"", "0", "false", "no", "off"})


def resolve_affinity(affinity: bool | None = None) -> bool:
    """Effective affinity setting: explicit > ambient > env > off."""
    if affinity is None and _current is not None:
        affinity = _current.affinity
    if affinity is None:
        raw = os.environ.get(_ENV_AFFINITY, "").strip().lower()
        if raw in _AFFINITY_TRUE:
            affinity = True
        elif raw in _AFFINITY_FALSE:
            affinity = False
        else:
            raise ExperimentError(
                f"{_ENV_AFFINITY}={raw!r} is not a boolean "
                f"(use 1/true/yes/on or 0/false/no/off)"
            )
    return bool(affinity)


def partition_cores(
    worker_count: int, cores: Iterable[int] | None = None
) -> list[tuple[int, ...]] | None:
    """Split the schedulable cores into one set per worker.

    Contiguous, nearly-even, disjoint blocks when there are at least
    as many cores as workers (adjacent logical CPUs tend to share
    cache levels, which is the locality the pinning is after);
    single-core sets reused round-robin when workers outnumber cores.
    Returns ``None`` — pinning not possible — on platforms without
    ``os.sched_getaffinity``/``os.sched_setaffinity`` (macOS, Windows)
    or when the core set cannot be read; the caller degrades to a
    structured warning, never an error.
    """
    if not (
        hasattr(os, "sched_getaffinity") and hasattr(os, "sched_setaffinity")
    ):
        return None
    if cores is None:
        try:
            cores = os.sched_getaffinity(0)
        except OSError:  # pragma: no cover - getaffinity(0) failing
            return None
    ordered = sorted(cores)
    if not ordered:
        return None
    if worker_count >= len(ordered):
        return [
            (ordered[i % len(ordered)],) for i in range(worker_count)
        ]
    base, extra = divmod(len(ordered), worker_count)
    sets: list[tuple[int, ...]] = []
    pos = 0
    for i in range(worker_count):
        size = base + (1 if i < extra else 0)
        sets.append(tuple(ordered[pos:pos + size]))
        pos += size
    return sets


def _env_number(name: str, parse, kind: str):
    raw = os.environ.get(name, "")
    if not raw:
        return None
    try:
        return parse(raw)
    except ValueError:
        raise ExperimentError(f"{name}={raw!r} is not {kind}") from None


def resolve_supervision(
    heartbeat_interval: float | None = None,
    max_worker_restarts: int | None = None,
) -> SupervisionConfig:
    """Effective supervisor knobs: explicit > ambient > env > defaults.

    ``REPRO_HEARTBEAT_INTERVAL`` / ``REPRO_MAX_WORKER_RESTARTS`` mirror
    the CLI flags; ``REPRO_HEARTBEAT_MISSES`` and
    ``REPRO_MAX_CELL_CRASHES`` are env-only (they tune the stall
    deadline and the poison threshold, which almost never need
    per-run adjustment).
    """
    if heartbeat_interval is None and _current is not None:
        heartbeat_interval = _current.heartbeat_interval
    if heartbeat_interval is None:
        heartbeat_interval = _env_number(_ENV_HEARTBEAT, float, "a number")
    if max_worker_restarts is None and _current is not None:
        max_worker_restarts = _current.max_worker_restarts
    if max_worker_restarts is None:
        max_worker_restarts = _env_number(_ENV_RESTARTS, int, "an integer")
    misses = _env_number(_ENV_MISSES, int, "an integer")
    crashes = _env_number(_ENV_CRASHES, int, "an integer")
    defaults = SupervisionConfig()
    return SupervisionConfig(
        heartbeat_interval=(
            heartbeat_interval
            if heartbeat_interval is not None
            else defaults.heartbeat_interval
        ),
        heartbeat_misses=(
            misses if misses is not None else defaults.heartbeat_misses
        ),
        max_worker_restarts=(
            max_worker_restarts
            if max_worker_restarts is not None
            else defaults.max_worker_restarts
        ),
        max_cell_crashes=(
            crashes if crashes is not None else defaults.max_cell_crashes
        ),
    )


def resolve_cache_dir(cache_dir: str | None = None) -> str | None:
    """Effective cache directory: explicit > ambient > env > disabled."""
    if cache_dir is None and _current is not None:
        cache_dir = _current.cache_dir
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    return cache_dir


def resolve_run_dir(run_dir: str | None = None) -> str | None:
    """Effective run directory: explicit > ambient > env > disabled."""
    if run_dir is None and _current is not None:
        run_dir = _current.run_dir
    if run_dir is None:
        run_dir = os.environ.get("REPRO_RUN_DIR") or None
    return run_dir


def run_spec(session: Session, spec: CellSpec) -> Any:
    """Execute one grid point — the single cell-execution function.

    Both the serial loop and every pool worker funnel through this
    (and thus through ``Session.report``), so quarantine handling, span
    attributes and ledger records cannot diverge between modes.
    """
    return session.report(spec.codec, spec.video, spec.crf, spec.preset)


# -- worker side -----------------------------------------------------


@dataclass(frozen=True)
class _CellJob:
    """Everything a worker needs to execute one cell, picklable."""

    spec: CellSpec
    machine: Any
    num_frames: int | None
    policy: ExecutionPolicy | None
    experiment_id: str
    cache_dir: str | None
    cache_salt: str
    #: Heartbeat sidecar file for this dispatch (``None`` = no beats).
    hb_path: str | None = None
    heartbeat_interval: float = 0.5
    #: Worker crashes this cell already caused; primes crash-kind
    #: fault counters so an injected kill is not re-fired forever.
    prior_crashes: int = 0
    #: Telemetry stream directory (``None`` = telemetry disabled).
    telemetry_dir: str | None = None
    #: Video delivery payload for this cell's clip — a
    #: :class:`~repro.parallel.shm.ShmVideoHandle` (zero-copy attach)
    #: or :class:`~repro.parallel.shm.InlineVideo` (pickled planes).
    #: ``None`` means the worker regenerates from the clip name.
    video_payload: Any = None


#: The core set this worker process was pinned to (``None`` = unpinned).
_WORKER_CORES: tuple[int, ...] | None = None


def _worker_init(slot_counter=None, core_sets=None) -> None:
    """Pool-worker initializer: leave terminal signals to the parent.

    Ctrl-C reaches the whole foreground process group; if workers died
    on the first SIGINT there would be nothing left to drain.  Workers
    ignore SIGINT/SIGTERM and the parent decides — finish in-flight
    cells on a drain, SIGKILL on a stall.

    With affinity enabled the parent passes a shared slot counter and
    the core partition: each fresh worker claims the next slot and
    pins itself to that slot's core set.  The counter lives across
    pool rebuilds (modulo the partition size), so a replacement worker
    inherits a still-distinct set rather than stacking on core 0.
    """
    _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
    _signal.signal(_signal.SIGTERM, _signal.SIG_IGN)
    if slot_counter is None or not core_sets:
        return
    global _WORKER_CORES
    with slot_counter.get_lock():
        slot = slot_counter.value
        slot_counter.value += 1
    cores = core_sets[slot % len(core_sets)]
    try:
        os.sched_setaffinity(0, cores)
    except (AttributeError, OSError):
        _WORKER_CORES = None
    else:
        _WORKER_CORES = tuple(sorted(cores))


def _worker_cell(job: _CellJob) -> dict[str, Any]:
    """Run one cell in a pool worker; ship result + telemetry home.

    Runs under a fresh :class:`ObsContext` (the fork inherited the
    parent's ambient collectors, which must not be touched from
    another process) and, when the parent runs guarded, a fresh
    ledger-less :class:`ResilienceGuard` carrying the parent's retry/
    timeout/fault policies — checkpointing stays with the parent.
    """
    obs = ObsContext()
    anchor_wall = time.time()
    anchor_mono = obs.clock.monotonic()
    session = Session(machine=job.machine, num_frames=job.num_frames)
    if job.video_payload is not None:
        session.add_video_source(
            job.spec.video, session.video_frames(), job.video_payload
        )
    if job.policy is not None:
        session.guard = ResilienceGuard(job.policy, job.experiment_id)
    if job.cache_dir:
        session.cache = ResultCache(job.cache_dir, salt=job.cache_salt)
    key = RunKey(
        job.spec.codec, job.spec.video, job.spec.crf, job.spec.preset,
        job.num_frames,
    )
    cell_key = session.cell_key(key)
    if (
        job.prior_crashes
        and job.policy is not None
        and job.policy.faults is not None
    ):
        job.policy.faults.prime(cell_key, job.prior_crashes)
    heartbeat = None
    if job.hb_path:
        heartbeat = HeartbeatWriter(
            job.hb_path, key=cell_key, interval=job.heartbeat_interval
        )
        heartbeat.start()
    sink = None
    if job.telemetry_dir:
        sink = open_sink(
            job.telemetry_dir,
            role="worker",
            obs=obs,
            interval=job.heartbeat_interval,
        )
        if sink is not None:
            sink.annotate(inflight=cell_key)
            if _WORKER_CORES is not None:
                sink.annotate(affinity=list(_WORKER_CORES))
    # Capture-memory accounting rides with telemetry: tracemalloc's
    # peak over the cell bounds what the (streaming or buffered)
    # capture pipeline retained, the number the `capture_peak_kib`
    # report column surfaces per cell.
    capture_peak_kib: float | None = None
    trace_memory = sink is not None
    if trace_memory:
        import tracemalloc

        tracemalloc.start()
    status, payload, error = OK, None, None
    try:
        with activate_obs(obs):
            cell_start = obs.clock.monotonic()
            try:
                payload = to_jsonable(run_spec(session, job.spec))
            except QuarantinedCellError as exc:
                status = QUARANTINED
                error = f"{type(exc.cause).__name__}: {exc.cause}"
            cell_end = obs.clock.monotonic()
    finally:
        if trace_memory:
            import tracemalloc

            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            capture_peak_kib = round(peak / 1024.0, 3)
        if heartbeat is not None:
            heartbeat.stop()
        if sink is not None:
            sink.annotate(inflight=None)
            sink.stop(
                cell=cell_key,
                status=status,
                capture_peak_kib=capture_peak_kib,
            )
    outcome = (
        session.guard.outcomes[-1]
        if session.guard is not None and session.guard.outcomes
        else None
    )
    return {
        "key": cell_key,
        "status": status,
        "payload": payload,
        "error": error,
        "attempts": outcome.attempts if outcome is not None else 1,
        "elapsed": (
            outcome.elapsed_seconds
            if outcome is not None
            else cell_end - cell_start
        ),
        "cell_start": cell_start,
        "cell_end": cell_end,
        "anchors": {"wall": anchor_wall, "mono": anchor_mono},
        "spans": [span.to_jsonable() for span in obs.tracer.spans],
        "events": [event.to_jsonable() for event in obs.events.events],
        "metrics": obs.metrics.snapshot(),
        "pid": os.getpid(),
        "affinity": (
            list(_WORKER_CORES) if _WORKER_CORES is not None else None
        ),
        "capture_peak_kib": capture_peak_kib,
    }


# -- parent side -----------------------------------------------------


def _worker_policy(guard: ResilienceGuard | None) -> ExecutionPolicy | None:
    """The parent's policy, rebuilt for in-worker execution.

    The ledger stays with the parent (workers get ``ledger_path=None``)
    and the fault plan is resolved *here* and shipped explicitly, so
    workers do not re-read the environment.  Per-site fault hit
    counters stay correct because each site is dispatched to exactly
    one worker.
    """
    if guard is None:
        return None
    base = guard.policy
    return ExecutionPolicy(
        retry=base.retry,
        cell_timeout=base.cell_timeout,
        ledger_path=None,
        resume=False,
        faults=base.fault_plan(),
    )


def _merge_result(
    session: Session,
    spec: CellSpec,
    key: RunKey,
    index: int,
    result: dict[str, Any],
    *,
    offset: float,
    thread_rows: dict[tuple[int, int], int],
) -> None:
    """Adopt one worker's result: report, ledger, spans, metrics."""
    guard = session.guard
    if result["status"] == OK:
        report = from_jsonable(result["payload"])
        session._reports[key] = report
        if guard is not None:
            guard.record_remote(
                CellOutcome(
                    key=result["key"],
                    status=OK,
                    attempts=result["attempts"],
                    elapsed_seconds=result["elapsed"],
                ),
                payload=result["payload"],
            )
    else:
        session._quarantined[key] = QuarantinedCellError(
            result["key"], RuntimeError(result["error"])
        )
        if guard is not None:
            guard.record_remote(
                CellOutcome(
                    key=result["key"],
                    status=QUARANTINED,
                    attempts=result["attempts"],
                    elapsed_seconds=result["elapsed"],
                    error=result["error"],
                )
            )

    obs = current_obs()
    tracer = active_tracer()
    if tracer is not None:
        # One synthetic timeline row per (worker pid, worker thread),
        # stable across cells, so the Chrome trace shows each worker as
        # its own concurrent lane.
        def row(local_tid: int) -> int:
            rid = thread_rows.get((result["pid"], local_tid))
            if rid is None:
                rid = thread_rows[(result["pid"], local_tid)] = (
                    tracer.synthetic_thread()
                )
            return rid

        thread_map = {
            tid: row(tid)
            for tid in sorted(
                {record.get("thread", 0) for record in result["spans"]} | {0}
            )
        }
        current = tracer.current()
        coordinator = tracer.record_span(
            "sweep.cell",
            result["cell_start"] + offset,
            result["cell_end"] + offset,
            parent_id=current.span_id if current is not None else None,
            thread=thread_map[0],
            status=SPAN_OK if result["status"] == OK else ERROR,
            error=(
                None
                if result["status"] == OK
                else f"QuarantinedCellError: {result['error']}"
            ),
            point=str(spec),
            index=index,
            worker=result["pid"],
        )
        tracer.graft(
            result["spans"],
            parent_id=coordinator.span_id,
            offset=offset,
            thread_map=thread_map,
        )
    if obs is not None:
        for record in result["events"]:
            # Append rebased copies directly: the worker already
            # mirrored any warning to the (shared) stderr.
            obs.events.events.append(
                Event(
                    kind=record["kind"],
                    message=record["message"],
                    time=record["time"] + offset,
                    level=record["level"],
                    fields=dict(record["fields"]),
                )
            )
        obs.metrics.merge_snapshot(result["metrics"])


def _execute_serial(
    session: Session, specs: list[CellSpec]
) -> list[Any | None]:
    """The ``workers=1`` engine: the classic sweep loop, spec-driven."""
    results: list[Any | None] = []
    for index, spec in enumerate(specs):
        signame = drain_requested()
        if signame is not None:
            raise SweepInterruptedError(
                signame, completed=index, total=len(specs)
            )
        try:
            with trace_span("sweep.cell", point=str(spec), index=index):
                results.append(run_spec(session, spec))
        except QuarantinedCellError:
            results.append(None)
    return results


def _kill_pids(pids: Iterable[int]) -> None:
    """SIGKILL each pid; a worker already gone is already what we want.

    SIGKILL (not SIGTERM) because the target may be SIGSTOPped — a
    stopped process queues every catchable signal until SIGCONT, and a
    hung worker is exactly the one that will never resume itself.
    """
    for pid in pids:
        try:
            os.kill(pid, _signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass


def _pool_pids(pool: ProcessPoolExecutor) -> list[int]:
    processes = getattr(pool, "_processes", None) or {}
    return list(processes)


class _Supervisor:
    """Parent-side state for one supervised pooled sweep.

    Owns the dispatch queue, the in-flight lease table, per-cell crash
    counts and the restart budget; the dispatch loop in
    :func:`_execute_pooled` drives it.  Results merge as they arrive —
    determinism comes from the final key-ordered assembly, not from
    completion order, so re-dispatching lost cells in any order is
    safe.
    """

    def __init__(
        self,
        session: Session,
        pending: dict[RunKey, tuple[int, CellSpec]],
        config: SupervisionConfig,
        worker_count: int,
    ) -> None:
        self.session = session
        self.guard = session.guard
        self.pending = pending
        self.config = config
        self.worker_count = worker_count
        self.queue: deque[RunKey] = deque(
            sorted(pending, key=lambda k: pending[k][0])
        )
        self.inflight: dict[Any, Lease] = {}
        self.crashes: dict[str, int] = {}
        self.restarts = 0
        self.dispatch_seq = 0
        # Heartbeat sidecars: inside the run directory (where they
        # survive for `repro status` post-mortems) when one is set,
        # else a tempdir removed on close.  One fresh subdirectory per
        # sweep either way — an experiment may run several sweeps and
        # their dispatch sequence numbers would otherwise collide.
        run_dir = resolve_run_dir()
        if run_dir is not None:
            parent = heartbeat_dir(run_dir)
            os.makedirs(parent, exist_ok=True)
            self.hb_dir = tempfile.mkdtemp(prefix="sweep-", dir=parent)
            self.hb_persistent = True
        else:
            self.hb_dir = tempfile.mkdtemp(prefix="repro-hb-")
            self.hb_persistent = False

    def dispatch(self, pool: ProcessPoolExecutor, job_template) -> bool:
        """Submit cells until the pool is saturated or a drain holds.

        Returns ``False`` when the pool turns out to be broken already
        (a worker died between ticks): the un-submitted cell goes back
        to the queue head and the caller runs the rebuild path.
        """
        while (
            self.queue
            and len(self.inflight) < self.worker_count
            and drain_requested() is None
        ):
            key = self.queue.popleft()
            index, spec = self.pending[key]
            cell_key = self.session.cell_key(key)
            prior = self.crashes.get(cell_key, 0)
            self.dispatch_seq += 1
            hb_path = os.path.join(
                self.hb_dir, f"{self.dispatch_seq:06d}.jsonl"
            )
            job = job_template(spec, hb_path, prior)
            # What actually crosses the process boundary per dispatch —
            # the number the zero-copy data plane exists to shrink.
            record_metric(
                "counter",
                "pool.payload_bytes",
                float(len(pickle.dumps(job, pickle.HIGHEST_PROTOCOL))),
            )
            try:
                future = pool.submit(_worker_cell, job)
            except BrokenProcessPool:
                self.queue.appendleft(key)
                return False
            self.inflight[future] = Lease(
                key=key,
                cell_key=cell_key,
                index=index,
                spec=spec,
                hb_path=hb_path,
                granted_wall=time.time(),
                seq=self.dispatch_seq,
            )
            if self.guard is not None:
                self.guard.grant_lease(
                    cell_key,
                    seq=self.dispatch_seq,
                    prior_crashes=prior,
                    wall=time.time(),
                    hb=os.path.basename(hb_path),
                )
            else:
                record_metric("counter", "pool.leases.granted")
        return True

    def check_stalls(self, pool: ProcessPoolExecutor) -> None:
        """SIGKILL workers whose leases missed the heartbeat deadline.

        The kill surfaces as a broken pool on the next tick;
        ``stall_killed`` pins crash blame on the stalled cell so the
        innocent in-flight cells are re-dispatched blame-free.
        """
        now_wall = time.time()
        for lease in self.inflight.values():
            if lease.stall_killed:
                continue
            if not lease.stalled(now_wall, self.config.stall_deadline):
                continue
            lease.stall_killed = True
            record_metric("counter", "pool.leases.expired")
            pid = lease.beat_pid()
            obs_events.warn(
                "pool.lease_stalled",
                f"cell {lease.cell_key}: no heartbeat for "
                f"{self.config.stall_deadline:g}s; killing worker",
                cell=lease.cell_key,
                pid=pid,
                deadline=self.config.stall_deadline,
            )
            _kill_pids([pid] if pid is not None else _pool_pids(pool))

    def handle_lost(self, lost: list[Lease]) -> None:
        """Blame, ledger, poison or requeue every lost lease.

        Blame goes to stall-killed leases when the supervisor caused
        the break, else to leases whose cells demonstrably started
        (their heartbeat file exists), else — when the worker died
        before any beat — to every lost lease, which guarantees a
        repeatedly-crashing cell accumulates blame and the sweep
        always makes progress toward poisoning it.
        """
        lost.sort(key=lambda lease: lease.index)
        stalled = [lease for lease in lost if lease.stall_killed]
        started = [lease for lease in lost if lease.started()]
        blamed = {
            lease.seq for lease in (stalled or started or lost)
        }
        requeue: list[RunKey] = []
        for lease in lost:
            reason = (
                "stalled past heartbeat deadline"
                if lease.stall_killed
                else "worker process died"
            )
            count = self.crashes.get(lease.cell_key, 0)
            if lease.seq in blamed:
                count += 1
                self.crashes[lease.cell_key] = count
            if self.guard is not None:
                self.guard.lease_lost(
                    lease.cell_key,
                    reason,
                    seq=lease.seq,
                    blamed=lease.seq in blamed,
                    crashes=count,
                    wall=time.time(),
                )
            else:
                record_metric("counter", "pool.leases.lost")
            if (
                lease.seq in blamed
                and count > self.config.max_cell_crashes
            ):
                self._poison(lease, count, reason)
            else:
                requeue.append(lease.key)
        self.queue = deque(
            sorted(
                [*requeue, *self.queue],
                key=lambda k: self.pending[k][0],
            )
        )

    def _poison(self, lease: Lease, count: int, reason: str) -> None:
        cause = WorkerCrashError(lease.cell_key, count, reason)
        self.session._quarantined[lease.key] = QuarantinedCellError(
            lease.cell_key, cause
        )
        if self.guard is not None:
            self.guard.record_remote(
                CellOutcome(
                    key=lease.cell_key,
                    status=QUARANTINED,
                    attempts=count,
                    error=f"{type(cause).__name__}: {cause}",
                )
            )
        record_metric("counter", "pool.cells.poisoned")
        record_metric("counter", "cells.quarantined")
        obs_events.warn(
            "pool.poison",
            f"cell {lease.cell_key} crashed {count} worker(s); "
            f"quarantined as poison",
            cell=lease.cell_key,
            crashes=count,
        )

    def spend_restart(self, lost_count: int) -> None:
        """Account one pool rebuild; raise once the budget is gone."""
        self.restarts += 1
        record_metric("counter", "pool.restarts")
        obs_events.warn(
            "pool.worker_crash",
            f"process pool broke ({lost_count} lease(s) lost); "
            f"rebuilding (restart {self.restarts}/"
            f"{self.config.max_worker_restarts})",
            lost=lost_count,
            restarts=self.restarts,
        )
        if self.restarts > self.config.max_worker_restarts:
            raise ExperimentError(
                f"process pool broke {self.restarts} times; restart "
                f"budget ({self.config.max_worker_restarts}) exhausted "
                "— raise --max-worker-restarts or fix the crash"
            )

    def close(self) -> None:
        if not self.hb_persistent:
            shutil.rmtree(self.hb_dir, ignore_errors=True)


def _execute_pooled(
    session: Session, specs: list[CellSpec], workers: int
) -> list[Any | None]:
    """Fan uncomputed cells over a supervised process pool."""
    parent_wall = time.time()
    parent_mono = SYSTEM_CLOCK.monotonic()
    guard = session.guard
    keys = [
        RunKey(s.codec, s.video, s.crf, s.preset, session.num_frames)
        for s in specs
    ]

    pending: dict[RunKey, tuple[int, CellSpec]] = {}
    for index, (spec, key) in enumerate(zip(specs, keys)):
        if (
            key in session._reports
            or key in session._quarantined
            or key in pending
        ):
            continue
        if guard is not None and guard.is_resumable(session.cell_key(key)):
            # Replay from the ledger in the parent: cheap, and the
            # RESUMED bookkeeping stays identical to the serial path.
            with trace_span("sweep.cell", point=str(spec), index=index):
                run_spec(session, spec)
            continue
        pending[key] = (index, spec)

    with drain_guard():
        if pending:
            _run_supervised(
                session,
                pending,
                workers,
                parent_wall=parent_wall,
                parent_mono=parent_mono,
            )
        signame = drain_requested()
        if signame is not None:
            completed = sum(
                1
                for key in keys
                if key in session._reports or key in session._quarantined
            )
            raise SweepInterruptedError(signame, completed, len(keys))

    # Merged output preserves the caller's point order exactly;
    # quarantined cells surface as None, mirroring the serial drop.
    return [
        None if key in session._quarantined else session._reports.get(key)
        for key in keys
    ]


def _run_supervised(
    session: Session,
    pending: dict[RunKey, tuple[int, CellSpec]],
    workers: int,
    *,
    parent_wall: float,
    parent_mono: float,
) -> None:
    """The supervised dispatch loop: at most ``workers`` cells in
    flight, heartbeat checks every tick, pool rebuilds on breakage."""
    guard = session.guard
    policy = _worker_policy(guard)
    cache_dir = session.cache.root if session.cache is not None else None
    cache_salt = session.cache.salt if session.cache is not None else ""
    experiment_id = guard.experiment_id if guard is not None else ""
    worker_count = min(workers, len(pending))
    config = resolve_supervision()
    run_dir = resolve_run_dir()
    stream_dir = telemetry_dir(run_dir) if run_dir is not None else None
    obs = current_obs()
    parent_sink = getattr(obs, "telemetry", None)
    if parent_sink is not None:
        # The sweep record lands *before* the first dispatch, so an
        # interrupted run's telemetry still says what was planned.
        parent_sink.flush(
            kind="sweep", cells=len(pending), workers=worker_count
        )
        parent_sink.annotate(phase="pool.supervise")
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )

    # CPU-affinity placement: partition the schedulable cores once and
    # hand every (re)built pool the same partition plus a shared slot
    # counter, so each fresh worker pins itself to a distinct set.
    core_sets: list[tuple[int, ...]] | None = None
    slot_counter = None
    if resolve_affinity():
        core_sets = partition_cores(worker_count)
        if core_sets is None:
            obs_events.warn(
                "pool.affinity.unsupported",
                "affinity requested but this platform has no "
                "sched_setaffinity; workers run unpinned",
                workers=worker_count,
            )
        else:
            slot_counter = context.Value("i", 0)
    obs_events.emit(
        "pool.start",
        f"dispatching {len(pending)} cell(s) over "
        f"{worker_count} worker(s)",
        cells=len(pending),
        workers=worker_count,
        heartbeat_interval=config.heartbeat_interval,
        affinity=core_sets is not None,
    )
    thread_rows: dict[tuple[int, int], int] = {}
    supervisor = _Supervisor(session, pending, config, worker_count)

    # Video data plane: resolve each distinct clip once in the parent
    # (through the session LRU) and pick its delivery payload.  The
    # parent owns every shm segment for the whole dispatch loop —
    # including across pool rebuilds, whose fresh workers re-attach the
    # same segments — and the ``finally`` below unlinks them on drain,
    # crash and normal completion alike.
    mode = shm_mode()
    plane = ShmDataPlane(run_dir=run_dir) if mode == "shm" else None
    payloads: dict[str, Any] = {}
    if mode != "generate":
        for name in dict.fromkeys(
            spec.video for _, spec in pending.values()
        ):
            try:
                video = session.video(name)
            except VideoError:
                continue  # non-catalog clip: worker raises as before
            if plane is not None:
                try:
                    payloads[name] = plane.publish(video)
                except ShmError:
                    record_metric("counter", "shm.publish.fallbacks")
            else:
                payloads[name] = InlineVideo.from_video(video)

    def job_template(
        spec: CellSpec, hb_path: str, prior: int
    ) -> _CellJob:
        return _CellJob(
            spec=spec,
            machine=session.machine,
            num_frames=session.num_frames,
            policy=policy,
            experiment_id=experiment_id,
            cache_dir=cache_dir,
            cache_salt=cache_salt,
            hb_path=hb_path,
            heartbeat_interval=config.heartbeat_interval,
            prior_crashes=prior,
            telemetry_dir=stream_dir,
            video_payload=payloads.get(spec.video),
        )

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=worker_count,
            mp_context=context,
            initializer=_worker_init,
            initargs=(slot_counter, core_sets),
        )

    def merge(lease: Lease, result: dict[str, Any]) -> None:
        offset = (
            parent_mono
            - result["anchors"]["mono"]
            + result["anchors"]["wall"]
            - parent_wall
        )
        _merge_result(
            session, lease.spec, lease.key, lease.index, result,
            offset=offset, thread_rows=thread_rows,
        )

    pool = make_pool()
    merged = 0

    def rebuild_after_break(
        broken_pool: ProcessPoolExecutor, lost: list[Lease]
    ) -> ProcessPoolExecutor:
        """Salvage finished futures, account the break, fresh pool.

        The executor poisons every in-flight future when one worker
        dies, but a future that completed *before* the break still
        holds its real result — merge those, lose the rest.
        """
        nonlocal merged
        for future, lease in list(supervisor.inflight.items()):
            salvaged = False
            if future.done():
                try:
                    merge(lease, future.result())
                    merged += 1
                    salvaged = True
                except Exception:  # noqa: BLE001 - poisoned future
                    pass
            if not salvaged:
                lost.append(lease)
        supervisor.inflight.clear()
        supervisor.spend_restart(len(lost))
        supervisor.handle_lost(lost)
        broken_pool.shutdown(wait=False, cancel_futures=True)
        return make_pool()

    try:
        with trace_span(
            "pool.supervise", cells=len(pending), workers=worker_count
        ):
            while supervisor.queue or supervisor.inflight:
                if not supervisor.dispatch(pool, job_template):
                    # A worker died between ticks; submit refused.
                    pool = rebuild_after_break(pool, [])
                    continue
                if not supervisor.inflight:
                    # Nothing running and nothing dispatchable: a
                    # drain request is holding the queue back.
                    break
                done, _ = futures_wait(
                    list(supervisor.inflight),
                    timeout=config.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                lost: list[Lease] = []
                pool_broken = False
                for future in done:
                    lease = supervisor.inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        lost.append(lease)
                        continue
                    merge(lease, result)
                    merged += 1
                if pool_broken:
                    pool = rebuild_after_break(pool, lost)
                    continue
                supervisor.check_stalls(pool)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        supervisor.close()
        if plane is not None:
            plane.close()
        if parent_sink is not None:
            parent_sink.annotate(phase=None)
            parent_sink.flush()
    obs_events.emit(
        "pool.done",
        f"pool completed {merged} cell(s) "
        f"({supervisor.restarts} restart(s))",
        cells=merged,
        restarts=supervisor.restarts,
        poisoned=sum(
            1
            for count in supervisor.crashes.values()
            if count > config.max_cell_crashes
        ),
    )


def execute_cells(
    session: Session,
    specs: Iterable[CellSpec | tuple],
    workers: int | None = None,
) -> list[Any | None]:
    """Execute a batch of grid points serially or over a process pool.

    Returns one entry per input spec, in input order: the cell's
    :class:`~repro.uarch.perfcounters.PerfReport`, or ``None`` where
    the cell was quarantined (callers drop those points, exactly as
    :func:`~repro.core.sweeps.sweep_cells` does).
    """
    normalised = [CellSpec.of(spec) for spec in specs]
    count = resolve_workers(workers)
    with drain_guard():
        if count <= 1 or len(normalised) <= 1:
            return _execute_serial(session, normalised)
        return _execute_pooled(session, normalised, count)
