"""perf-stat-style report formatting.

Renders a :class:`~repro.uarch.perfcounters.PerfReport` the way
``perf stat`` plus the top-down methodology would print it, for the
examples and the experiment harness's human-readable output.
"""

from __future__ import annotations

from ..uarch.perfcounters import PerfReport


def format_perf_report(report: PerfReport) -> str:
    """Multi-line ``perf stat``-style rendering of one encode."""
    td = report.topdown
    lines = [
        f"# {report.codec} | {report.video} | crf={report.crf:g} "
        f"preset={report.preset}",
        f"{report.instructions:20,.0f}  instructions (native-equivalent)",
        f"{report.cycles:20,.0f}  cycles",
        f"{report.ipc:20.2f}  insn per cycle",
        f"{report.time_seconds:20.1f}  seconds (modelled)",
        "",
        "  instruction mix:",
    ]
    for name, value in report.mix_percent.items():
        lines.append(f"    {name:>8}: {value:5.1f} %")
    lines += [
        "",
        f"  branches: miss rate {report.branch.miss_rate * 100:.2f} %, "
        f"MPKI {report.branch.mpki:.2f}",
        f"  caches:   L1D {report.cache_mpki['l1d']:.2f} MPKI, "
        f"L2 {report.cache_mpki['l2']:.2f} MPKI, "
        f"LLC {report.cache_mpki['llc']:.3f} MPKI",
        "",
        "  top-down:",
        f"    retiring        {td.retiring * 100:5.1f} %",
        f"    bad speculation {td.bad_speculation * 100:5.1f} %",
        f"    frontend bound  {td.frontend * 100:5.1f} %",
        f"    backend bound   {td.backend * 100:5.1f} %"
        f"  (memory {td.backend_memory * 100:.1f} %, "
        f"core {td.backend_core * 100:.1f} %)",
        "",
        f"  output: {report.bitrate_kbps:.0f} kbps, {report.psnr_db:.2f} dB PSNR",
    ]
    return "\n".join(lines)
