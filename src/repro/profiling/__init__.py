"""Profiling front-ends: gprof- and perf-style reporting."""

from .gprof import (
    FlatProfileRow,
    flat_profile,
    format_flat_profile,
    hottest_function,
)
from .perf import format_perf_report

__all__ = [
    "FlatProfileRow",
    "flat_profile",
    "format_flat_profile",
    "format_perf_report",
    "hottest_function",
]
