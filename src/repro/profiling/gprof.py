"""Function-level flat profile (the gprof substitute).

The paper uses GNU gprof to find hot functions and aim the Pin trace
windows at them (§3.4).  Our instrumentation layer attributes kernel
charges to the enclosing pipeline function; this module formats that
attribution as a gprof-style flat profile and answers "which function
is hot" queries for the trace-extraction workflow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..trace.instrument import Instrumenter


@dataclass(frozen=True)
class FlatProfileRow:
    """One row of the flat profile."""

    function: str
    calls: int
    instructions: float
    percent: float
    cumulative_percent: float


def flat_profile(instrumenter: Instrumenter) -> list[FlatProfileRow]:
    """gprof-style flat profile, hottest first."""
    if not instrumenter.functions:
        raise SimulationError("no function attribution recorded")
    total = sum(p.instructions for p in instrumenter.functions.values())
    if total <= 0:
        raise SimulationError("profile contains no attributed work")
    rows = []
    cumulative = 0.0
    ordered = sorted(
        instrumenter.functions.items(),
        key=lambda item: -item[1].instructions,
    )
    for name, prof in ordered:
        percent = 100.0 * prof.instructions / total
        cumulative += percent
        rows.append(
            FlatProfileRow(
                function=name,
                calls=prof.calls,
                instructions=prof.instructions,
                percent=percent,
                cumulative_percent=cumulative,
            )
        )
    return rows


def hottest_function(instrumenter: Instrumenter) -> str:
    """Name of the function with the most attributed instructions."""
    return flat_profile(instrumenter)[0].function


def format_flat_profile(rows: list[FlatProfileRow]) -> str:
    """Render rows in gprof's familiar column layout."""
    lines = [
        f"{'% time':>7}  {'cumulative':>10}  {'calls':>8}  name",
    ]
    for row in rows:
        lines.append(
            f"{row.percent:7.2f}  {row.cumulative_percent:10.2f}  "
            f"{row.calls:8d}  {row.function}"
        )
    return "\n".join(lines)
