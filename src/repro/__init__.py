"""repro — reproduction of "Do Video Encoding Workloads Stress the
Microarchitecture?" (IISWC 2023).

The library is organised as the paper's toolchain is:

- :mod:`repro.video` — vbench workloads, Y4M I/O, PSNR/bitrate/BD-rate.
- :mod:`repro.codecs` — block-transform encoder framework plus AV1
  (SVT-AV1/libaom), VP9, H.264 (x264) and H.265 (x265) encoder models.
- :mod:`repro.trace` — the Pin substitute: instruction mixes, branch
  traces, memory touches, function profiles.
- :mod:`repro.uarch` — cache hierarchy, branch predictors, and the
  top-down out-of-order core model (the perf substitute).
- :mod:`repro.cbp` — Championship Branch Prediction harness.
- :mod:`repro.parallel` — encoder task-graph thread-scaling models.
- :mod:`repro.profiling` — gprof/perf-style report front-ends.
- :mod:`repro.resilience` — retry/timeout policies, checkpointed
  sweeps with resume, and deterministic fault injection.
- :mod:`repro.obs` — structured observability: span tracing, a
  metrics registry, and Chrome-trace/JSONL run-trace export.
- :mod:`repro.core` — the characterization methodology: single-encode
  characterization and CRF/preset/thread sweeps.
- :mod:`repro.experiments` — one entry per paper table/figure.

Quickstart::

    import repro

    video = repro.video.load("game1")
    encoder = repro.codecs.create_encoder("svt-av1", crf=40, preset=6)
    result = repro.core.characterize(encoder, video)
    print(result.summary())
"""

from . import (  # noqa: F401  (subpackages re-exported)
    cbp,
    codecs,
    core,
    errors,
    experiments,
    obs,
    parallel,
    profiling,
    resilience,
    trace,
    uarch,
    video,
)

__version__ = "1.0.0"
