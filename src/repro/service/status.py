"""Read-only views of a service directory.

``repro jobs`` and ``repro status`` (pointed at a service directory)
must work without constructing a service instance — and without the
heavyweight experiment imports a dispatcher needs — so this module
replays ``jobs.jsonl`` directly into a JSON-able status document plus
a text rendering.  Like the run-status reader, it is strictly
read-only and tolerant of a live log (a torn final line is a write in
progress, not corruption).
"""

from __future__ import annotations

import os
import time
from typing import Any

from ..errors import ServiceError
from .jobs import (
    ACTIVE_STATES,
    JOB_LOG_FILE,
    PENDING,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobLog,
    replay_jobs,
)

#: Rendering order for state summaries.
_STATE_ORDER = (PENDING, QUEUED, RUNNING) + TERMINAL_STATES


def is_service_dir(path: str) -> bool:
    """Whether ``path`` is an encode-farm service directory (it has a
    job log — the one artifact every service directory has)."""
    return os.path.isfile(os.path.join(path, JOB_LOG_FILE))


def load_service_status(service_dir: str) -> dict[str, Any]:
    """Replay a service directory's job log into a status document.

    Raises :class:`~repro.errors.ServiceError` when the directory has
    no job log (it is not a service directory).
    """
    service_dir = os.path.abspath(service_dir)
    if not is_service_dir(service_dir):
        raise ServiceError(
            f"{service_dir!r} is not a service directory "
            f"(no {JOB_LOG_FILE})"
        )
    log = JobLog(os.path.join(service_dir, JOB_LOG_FILE))
    jobs = replay_jobs(iter(log.read_all()))
    states: dict[str, int] = {}
    tenants: dict[str, dict[str, Any]] = {}
    for job in jobs.values():
        states[job.state] = states.get(job.state, 0) + 1
        tenant = tenants.setdefault(
            job.tenant, {"jobs": 0, "queued": 0, "estimated_seconds": 0.0}
        )
        tenant["jobs"] += 1
        if job.state == QUEUED:
            tenant["queued"] += 1
            if job.estimated_seconds:
                tenant["estimated_seconds"] += job.estimated_seconds
    return {
        "service_dir": service_dir,
        "generated_wall": time.time(),
        "jobs": [job.to_jsonable() for job in jobs.values()],
        "states": states,
        "queue_depth": states.get(QUEUED, 0),
        "running": states.get(RUNNING, 0),
        "tenants": {
            name: dict(info) for name, info in sorted(tenants.items())
        },
    }


def _age(now: float, wall: float) -> str:
    if not wall:
        return "-"
    seconds = max(0.0, now - wall)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def format_service_status(status: dict[str, Any]) -> str:
    """Human-oriented rendering of :func:`load_service_status`."""
    lines: list[str] = []
    jobs = status.get("jobs", [])
    states = status.get("states", {})
    summary = ", ".join(
        f"{states[state]} {state}"
        for state in _STATE_ORDER
        if states.get(state)
    )
    lines.append(
        f"service {status.get('service_dir', '?')}: "
        f"{len(jobs)} job(s){' — ' + summary if summary else ''}"
    )
    for name, info in status.get("tenants", {}).items():
        lines.append(
            f"  tenant {name}: {info['jobs']} job(s), "
            f"{info['queued']} queued"
            + (
                f" (~{info['estimated_seconds']:.0f}s estimated)"
                if info.get("estimated_seconds")
                else ""
            )
        )
    if jobs:
        lines.append(
            f"  {'JOB':<14} {'TENANT':<10} {'EXPERIMENT':<12} "
            f"{'PRI':>3} {'STATE':<10} {'AGE':>5}  DETAIL"
        )
    now = status.get("generated_wall") or time.time()
    for job in jobs:
        meta = job.get("meta") or {}
        if job.get("state") in ACTIVE_STATES:
            detail = meta.get("reason") or ""
            if job.get("state") == RUNNING and meta.get("pid"):
                detail = f"pid {meta['pid']}"
        else:
            detail = meta.get("reason") or meta.get("result_path") or ""
        lines.append(
            f"  {job.get('job_id', '?'):<14} "
            f"{job.get('tenant', '?'):<10} "
            f"{job.get('experiment_id', '?'):<12} "
            f"{job.get('priority', 0):>3} "
            f"{job.get('state', '?'):<10} "
            f"{_age(now, job.get('submitted_wall', 0.0)):>5}  "
            f"{detail}"
        )
    return "\n".join(lines)


def active_jobs(status: dict[str, Any]) -> list[dict[str, Any]]:
    """The status document's still-active jobs (CLI ``--active``)."""
    return [
        job
        for job in status.get("jobs", [])
        if job.get("state") in ACTIVE_STATES
    ]


__all__ = [
    "Job",
    "active_jobs",
    "format_service_status",
    "is_service_dir",
    "load_service_status",
]
