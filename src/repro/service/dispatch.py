"""Job dispatch: run one admitted job under a job-tier lease.

This is the PR-6 cell lease/heartbeat contract lifted one tier up.
While a dispatcher executes a job it beats a per-job heartbeat
sidecar (``<service-dir>/heartbeats/<job-id>.jsonl``) — the same
:class:`~repro.parallel.supervise.HeartbeatWriter` pool workers use —
and the job's ``lease`` record in the job log names the dispatcher
pid.  A service process that finds a leased job whose dispatcher is
dead (or silent past the stall deadline) marks the lease ``lost`` and
requeues the job; because every job executes with ``resume=True``
against its own run directory, the *next* dispatch replays the cells
the dead dispatcher already finished from the on-disk ledger and only
computes the remainder.  A job is therefore exactly as crash-safe as
its cells.

The job's sweep grid itself is sharded by the existing supervised
worker pool (:mod:`repro.parallel.pool`): ``dispatch_job`` simply
passes the job's worker count through ``run_experiment``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

from ..parallel.supervise import HeartbeatWriter
from .jobs import Job, job_dir, job_heartbeat_path

#: Name of the serialized :class:`~repro.core.report.ExperimentResult`
#: inside a job's run directory.
RESULT_FILE = "result.json"


def job_result_path(service_dir: str, job_id: str) -> str:
    return os.path.join(job_dir(service_dir, job_id), RESULT_FILE)


def load_job_result(service_dir: str, job_id: str) -> dict[str, Any] | None:
    """The completed job's result document, or ``None`` if absent."""
    path = job_result_path(service_dir, job_id)
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def dispatch_job(
    service_dir: str,
    job: Job,
    *,
    workers: int | None = None,
    cache_dir: str | None = None,
    heartbeat_interval: float = 0.5,
) -> dict[str, Any]:
    """Execute one job to completion; returns the completion meta.

    Heartbeats run for the whole execution.  ``resume=True`` makes
    every dispatch a resume of whatever an earlier (possibly killed)
    dispatch left in the job's run directory — a fresh job simply has
    an empty ledger.  Exceptions propagate to the caller, which owns
    the ``failed``/``lost`` bookkeeping.
    """
    # Imported here, not at module top: repro.experiments imports the
    # pool engine and the experiment modules — heavyweight for
    # read-only service consumers (``repro jobs``).
    from ..experiments import run_experiment

    run_directory = job_dir(service_dir, job.job_id)
    heartbeat = HeartbeatWriter(
        job_heartbeat_path(service_dir, job.job_id),
        key=job.job_id,
        interval=heartbeat_interval,
    )
    heartbeat.start()
    started = time.monotonic()
    try:
        result = run_experiment(
            job.experiment_id,
            run_dir=run_directory,
            resume=True,
            workers=job.workers if job.workers is not None else workers,
            cache_dir=cache_dir,
            heartbeat_interval=heartbeat_interval,
        )
    finally:
        heartbeat.stop()
    elapsed = time.monotonic() - started
    result_path = job_result_path(service_dir, job.job_id)
    with open(result_path, "w", encoding="utf-8") as handle:
        handle.write(result.to_json(indent=2))
        handle.write("\n")
    return {
        "result_path": os.path.relpath(result_path, service_dir),
        "elapsed_seconds": round(elapsed, 6),
        "cells": result.provenance.get("cells", 0),
        "resumed_cells": result.provenance.get("resumed", 0),
        "quarantined_cells": len(result.provenance.get("quarantined", [])),
    }
