"""Pre-execution cost estimation for admission control.

arXiv 2401.16067 shows SVT-AV1 encoding time is predictable *before
encoding* from cheap video complexity features; the service layer
uses the same idea one tier up: estimate a whole job's cost from
features that are free to compute — the sweep grid's shape and each
clip's catalog complexity — and let admission control reject or
bound work **before** a single frame is touched.

The model is deliberately a heuristic, not a fit: cost scales with

- pixels per frame x frames (the work surface),
- the clip's published vbench entropy (texture/motion complexity —
  the paper's fig04 shows instruction count tracking content),
- a per-codec weight (AV1-family encoders burn ~an order of magnitude
  more instructions than x264 — paper fig01),
- a preset factor (slower presets search more — paper fig11).

Absolute accuracy does not matter; admission only needs the estimate
to be *monotone* in the true cost (more cells, heavier codecs, higher
entropy => larger estimate), which the unit tests pin.  Tenants'
budgets are expressed in the same estimated-seconds currency, so a
recalibration rescales everyone equally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import ServiceError
from ..video import vbench

#: Calibration constant: estimated seconds per (kilopixel x frame) for
#: x264 at the reference preset on a zero-entropy clip.
BASE_SECONDS_PER_KILOPIXEL_FRAME = 0.004

#: Relative instruction-cost weights per encoder (paper fig01: the
#: AV1-family encoders are the expensive end; x264 the cheap one).
CODEC_WEIGHTS: dict[str, float] = {
    "x264": 1.0,
    "x265": 2.5,
    "libvpx-vp9": 3.0,
    "libaom": 9.0,
    "svt-av1": 5.0,
}
DEFAULT_CODEC_WEIGHT = 4.0

#: Preset factor anchor: preset 8 (fastest) = 1.0, each step toward 0
#: multiplies work (paper fig11's instruction growth across presets).
PRESET_STEP_FACTOR = 1.25
REFERENCE_PRESET = 8


@dataclass(frozen=True)
class CellEstimate:
    """Estimated cost of one (codec, video, crf, preset) cell."""

    codec: str
    video: str
    seconds: float


@dataclass(frozen=True)
class CostEstimate:
    """Estimated cost of one whole job (one experiment run)."""

    experiment_id: str
    cells: int
    seconds: float
    #: The features the estimate derived from, for the job record and
    #: post-hoc calibration against observed elapsed times.
    features: dict

    def to_jsonable(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "cells": self.cells,
            "seconds": round(self.seconds, 6),
            "features": self.features,
        }


def preset_factor(preset: int) -> float:
    """Work multiplier of a speed preset relative to the fastest."""
    return PRESET_STEP_FACTOR ** max(0, REFERENCE_PRESET - int(preset))


def estimate_cell(
    codec: str,
    video: str,
    preset: int,
    num_frames: int | None = None,
) -> CellEstimate:
    """Estimated seconds for one characterization cell.

    Unknown clips get the catalog's median geometry and entropy — the
    estimate must never raise for a cell the encoder itself would
    accept (estimation failure is not an admission verdict).
    """
    try:
        entry = vbench.entry(video)
        width, height = entry.proxy_size
        entropy = entry.entropy
    except Exception:  # noqa: BLE001 - unknown clip: neutral features
        width, height = 128, 72
        entropy = 4.0
    frames = num_frames if num_frames is not None else vbench.DEFAULT_NUM_FRAMES
    kilopixel_frames = width * height * frames / 1000.0
    seconds = (
        BASE_SECONDS_PER_KILOPIXEL_FRAME
        * kilopixel_frames
        * (1.0 + entropy / 4.0)
        * CODEC_WEIGHTS.get(codec, DEFAULT_CODEC_WEIGHT)
        * preset_factor(preset)
    )
    return CellEstimate(codec=codec, video=video, seconds=seconds)


def estimate_grid(
    specs: Iterable[tuple],
    num_frames: int | None = None,
) -> tuple[int, float]:
    """(cells, estimated seconds) for a ``(codec, video, crf, preset)``
    grid.  CRF barely moves instruction count (paper fig04's flat IPC /
    ~±10% instructions), so it is deliberately not a feature."""
    cells = 0
    seconds = 0.0
    for codec, video, _crf, preset in specs:
        cells += 1
        seconds += estimate_cell(codec, video, preset, num_frames).seconds
    return cells, seconds


def experiment_grid(experiment_id: str) -> list[tuple]:
    """The (codec, video, crf, preset) grid an experiment will sweep.

    Derived from the same :mod:`repro.experiments.common` helpers the
    experiments read (so ``REPRO_FAST`` shrinks the estimate exactly
    as it shrinks the run).  Experiments without a session sweep grid
    (the CBP figures, table2) are modelled as one nominal cell per
    clip.  Raises :class:`~repro.errors.ServiceError` for ids the
    registry does not know.
    """
    # Imported here: repro.experiments imports the parallel engine,
    # and the service package must stay importable without it.
    from ..experiments import experiment_ids
    from ..experiments import common

    if experiment_id not in experiment_ids():
        raise ServiceError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(experiment_ids())}"
        )
    videos = common.sweep_videos()
    crfs = common.sweep_crfs()
    presets = common.sweep_presets()
    if experiment_id in ("fig04", "fig05", "fig06", "fig07"):
        return [
            ("svt-av1", video, crf, 4) for video in videos for crf in crfs
        ]
    if experiment_id == "fig11":
        return [
            ("svt-av1", video, 40, preset)
            for video in videos
            for preset in presets
        ]
    if experiment_id in ("fig01", "fig02", "fig03", "table1"):
        return [
            (codec, video, 40, 6)
            for codec in common.ALL_CODECS
            for video in videos
        ]
    if experiment_id in ("fig12", "fig13", "fig14", "fig15", "fig16"):
        return [
            (codec, video, 40, 6)
            for codec in common.THREAD_CODECS
            for video in videos
        ]
    # CBP harness figures, table2 and future ids: one nominal
    # reference-codec cell per clip keeps the estimate conservative
    # and monotone in catalog size.
    return [("svt-av1", video, 40, 6) for video in videos]


def estimate_experiment(
    experiment_id: str,
    num_frames: int | None = None,
) -> CostEstimate:
    """Estimated cost of one experiment-shaped job."""
    grid = experiment_grid(experiment_id)
    cells, seconds = estimate_grid(grid, num_frames)
    codecs = sorted({codec for codec, *_ in grid})
    return CostEstimate(
        experiment_id=experiment_id,
        cells=cells,
        seconds=seconds,
        features={
            "codecs": codecs,
            "videos": len({video for _, video, *_ in grid}),
            "num_frames": num_frames,
        },
    )
