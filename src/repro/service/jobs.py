"""The encode-farm job model and its persistent event log.

A *job* is one experiment-sized unit of work submitted to the
long-running service: "regenerate fig04 for tenant A at priority 2".
Its whole lifecycle is an append-only JSONL event stream in the
service directory (``jobs.jsonl``), one :class:`JobRecord` per
transition:

``submitted``
    The job entered the system (full spec rides on this record).
    Written by :meth:`~repro.service.EncodeFarmService.submit` or by
    a separate ``repro submit`` process appending to the shared log.
``admitted`` / ``rejected``
    The admission verdict (see :mod:`repro.service.queue`); only
    admitted jobs enter the fair-share queue.
``lease`` / ``lost``
    The job-tier lease: a dispatcher process picked the job up
    (``lease`` carries its pid and heartbeat file) or was discovered
    dead while holding it (``lost`` — the job returns to the queue
    and its next dispatch *resumes* from the job run directory's cell
    ledger, the same contract pool cells have had since PR 6).
``completed`` / ``failed`` / ``cancelled``
    Terminal outcomes.

State is reconstruction, not storage: :func:`replay_jobs` folds the
stream into one :class:`Job` per id, latest record winning — exactly
the resilience ledger's model, and the log shares its durability
story: writers repair a torn final line before appending
(:func:`repro.jsonlio.clean_tail`), readers of a possibly-live log
drop one (:func:`repro.jsonlio.load_jsonl`), and corruption anywhere
else raises.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator

from ..errors import CheckpointError, ServiceError
from ..jsonlio import clean_tail, load_jsonl

#: Bump when the job-record layout changes incompatibly.
JOB_SCHEMA_VERSION = 1

#: The service directory's artifact names (the contract ``repro jobs``
#: and ``repro status`` read; documented in OBSERVABILITY.md).
JOB_LOG_FILE = "jobs.jsonl"
JOBS_DIR = "jobs"
SERVICE_HEARTBEAT_DIR = "heartbeats"
SERVICE_METRICS_FILE = "metrics.prom"

# Record kinds (one per lifecycle transition).
SUBMITTED = "submitted"
ADMITTED = "admitted"
REJECTED = "rejected"
LEASE = "lease"
LOST = "lost"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

_KINDS = (
    SUBMITTED, ADMITTED, REJECTED, LEASE, LOST, COMPLETED, FAILED,
    CANCELLED,
)

# Derived job states.
PENDING = "pending"        # submitted, admission verdict outstanding
QUEUED = "queued"          # admitted (or lease lost), awaiting dispatch
RUNNING = "running"        # a dispatcher holds the lease
#: States from which a job can still make progress.
ACTIVE_STATES = (PENDING, QUEUED, RUNNING)
#: Terminal states (nothing will ever append another record).
TERMINAL_STATES = (REJECTED, COMPLETED, FAILED, CANCELLED)

_KIND_TO_STATE = {
    SUBMITTED: PENDING,
    ADMITTED: QUEUED,
    LOST: QUEUED,
    LEASE: RUNNING,
    REJECTED: REJECTED,
    COMPLETED: COMPLETED,
    FAILED: FAILED,
    CANCELLED: CANCELLED,
}


def new_job_id() -> str:
    """A short, filesystem-safe, collision-resistant job id."""
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class JobRecord:
    """One job-lifecycle event, as persisted in ``jobs.jsonl``."""

    job_id: str
    kind: str
    wall: float = 0.0
    #: Spec fields; populated on the ``submitted`` record only.
    tenant: str = ""
    experiment_id: str = ""
    priority: int = 0
    workers: int | None = None
    num_frames: int | None = None
    #: Estimated cost in seconds (see :mod:`repro.service.estimate`);
    #: on ``submitted`` when the submitter estimated, else on
    #: ``admitted``.
    estimated_seconds: float | None = None
    #: Transition context: rejection/failure reason, dispatcher pid,
    #: heartbeat path, result path, elapsed seconds.
    meta: dict[str, Any] | None = None
    schema_version: int = JOB_SCHEMA_VERSION

    def to_line(self) -> str:
        data = asdict(self)
        # Keep the common records short: drop empty spec fields.
        for key in (
            "tenant", "experiment_id", "priority", "workers",
            "num_frames", "estimated_seconds", "meta",
        ):
            if not data.get(key) and data.get(key) != 0:
                del data[key]
            elif key in ("priority",) and data[key] == 0 and (
                self.kind != SUBMITTED
            ):
                del data[key]
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_line(cls, line: str) -> "JobRecord":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"corrupt job record: {line[:80]!r}"
            ) from exc
        if (
            not isinstance(data, dict)
            or "job_id" not in data
            or "kind" not in data
        ):
            raise CheckpointError(f"malformed job record: {line[:80]!r}")
        version = data.get("schema_version", 0)
        if version != JOB_SCHEMA_VERSION:
            raise CheckpointError(
                f"job record schema version {version} unsupported "
                f"(expected {JOB_SCHEMA_VERSION})"
            )
        if data["kind"] not in _KINDS:
            raise CheckpointError(
                f"unknown job record kind {data['kind']!r}"
            )
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class Job:
    """One job's current state, folded from its event records."""

    job_id: str
    tenant: str = "default"
    experiment_id: str = ""
    priority: int = 0
    workers: int | None = None
    num_frames: int | None = None
    estimated_seconds: float | None = None
    state: str = PENDING
    submitted_wall: float = 0.0
    updated_wall: float = 0.0
    #: Monotone per-job sequence for FIFO tie-breaks: the index of the
    #: job's ``submitted`` record in the log.
    seq: int = 0
    #: How many dispatch leases this job has consumed (``lost`` leases
    #: included) — the job-tier analogue of cell attempts.
    leases: int = 0
    #: Context of the latest transition (reason, pid, result path...).
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    def apply(self, record: JobRecord) -> None:
        """Fold one event into this job's state (latest wins)."""
        if record.kind == SUBMITTED:
            self.tenant = record.tenant or self.tenant
            self.experiment_id = record.experiment_id
            self.priority = record.priority
            self.workers = record.workers
            self.num_frames = record.num_frames
            self.submitted_wall = record.wall
            if record.estimated_seconds is not None:
                self.estimated_seconds = record.estimated_seconds
        elif record.kind == ADMITTED:
            if record.estimated_seconds is not None:
                self.estimated_seconds = record.estimated_seconds
        elif record.kind == LEASE:
            self.leases += 1
        self.state = _KIND_TO_STATE[record.kind]
        self.updated_wall = record.wall
        self.meta = dict(record.meta or {})

    def to_jsonable(self) -> dict[str, Any]:
        data = asdict(self)
        data["active"] = self.active
        return data


def replay_jobs(records: Iterator[JobRecord]) -> dict[str, Job]:
    """Fold an event stream into job-id -> :class:`Job` (insertion
    order preserved, which is submission order for a well-formed log)."""
    jobs: dict[str, Job] = {}
    for index, record in enumerate(records):
        job = jobs.get(record.job_id)
        if job is None:
            job = jobs[record.job_id] = Job(job_id=record.job_id, seq=index)
        job.apply(record)
    return jobs


class JobLog:
    """The append-only job event log, shared across service processes.

    One log file serves every writer: the serve loop appends
    transitions while ``repro submit`` processes append ``submitted``
    records.  Appends are single ``O_APPEND`` writes of one line, so
    concurrent submitters interleave whole records; the writer repairs
    a torn final line (its own crash signature) before appending, and
    :meth:`poll_new` lets the serve loop consume records other
    processes appended since its last read without re-parsing the
    whole file.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(parent, exist_ok=True)
        except OSError as exc:
            raise ServiceError(
                f"cannot create service directory {parent!r}: {exc}"
            ) from exc
        self._offset = 0

    def read_all(self) -> list[JobRecord]:
        """Every record currently on disk (advances the poll cursor).

        A torn *final* line is left in place (another process may be
        mid-append) and the cursor stops before it, so the fragment is
        re-read — whole, eventually — by a later :meth:`poll_new`.
        """
        if not os.path.exists(self.path):
            self._offset = 0
            return []
        try:
            records, torn = load_jsonl(self.path, JobRecord.from_line)
        except OSError as exc:
            raise ServiceError(
                f"cannot read job log {self.path!r}: {exc}"
            ) from exc
        self._offset = (
            torn.offset if torn is not None else os.path.getsize(self.path)
        )
        return records

    def poll_new(self) -> list[JobRecord]:
        """Records appended (by anyone) since the last read.

        Reads only complete lines past the cursor; an unterminated
        final line is another writer mid-append and is left for the
        next poll.
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size <= self._offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read(size - self._offset)
        lines = chunk.split(b"\n")
        # An unterminated tail is another writer mid-append: leave it
        # for the next poll (split leaves b"" there when the chunk
        # ended cleanly on a newline).
        tail = lines.pop()
        records: list[JobRecord] = []
        for raw in lines:
            line = raw.decode("utf-8", "replace").strip()
            if line:
                records.append(JobRecord.from_line(line))
        self._offset += len(chunk) - len(tail)
        return records

    def append(self, record: JobRecord) -> None:
        """Durably append one record (tail repaired first)."""
        try:
            clean_tail(self.path)
        except OSError:
            pass
        line = record.to_line()
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise ServiceError(
                f"cannot append to job log {self.path!r}: {exc}"
            ) from exc


def job_dir(service_dir: str, job_id: str) -> str:
    """The per-job run directory (the PR-7 run-dir contract applies
    inside it: ledger, spans, telemetry, manifest)."""
    return os.path.join(service_dir, JOBS_DIR, job_id)


def job_heartbeat_path(service_dir: str, job_id: str) -> str:
    """The job-tier heartbeat sidecar a dispatcher beats while running."""
    return os.path.join(service_dir, SERVICE_HEARTBEAT_DIR, f"{job_id}.jsonl")


def record_now(job_id: str, kind: str, **fields: Any) -> JobRecord:
    """A :class:`JobRecord` stamped with the current wall time."""
    return JobRecord(job_id=job_id, kind=kind, wall=time.time(), **fields)
