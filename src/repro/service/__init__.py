"""Encode-farm service layer: jobs, fair-share scheduling, admission.

The service wraps ``run_experiment`` and the supervised worker pool
behind a long-running job API.  Submodules:

- :mod:`repro.service.jobs` — the job model and its append-only
  event log (``jobs.jsonl``).
- :mod:`repro.service.estimate` — pre-execution cost estimation from
  complexity features (the admission currency).
- :mod:`repro.service.queue` — weighted fair-share queue and the
  admission controller.
- :mod:`repro.service.dispatch` — job-tier lease execution (one
  heartbeat-supervised ``run_experiment`` per job, always resumable).
- :mod:`repro.service.service` — :class:`EncodeFarmService`, the
  serve loop that ties the above together.
- :mod:`repro.service.status` — read-only status documents for
  ``repro jobs`` / ``repro status``.
"""

from .dispatch import dispatch_job, job_result_path, load_job_result
from .estimate import CostEstimate, estimate_cell, estimate_experiment
from .jobs import (
    ACTIVE_STATES,
    JOB_LOG_FILE,
    TERMINAL_STATES,
    Job,
    JobLog,
    JobRecord,
    job_dir,
    new_job_id,
    replay_jobs,
)
from .queue import (
    AdmissionController,
    FairShareQueue,
    TenantPolicy,
    Verdict,
    job_cost,
)
from .service import EncodeFarmService, ServiceConfig, submit_job
from .status import (
    format_service_status,
    is_service_dir,
    load_service_status,
)

__all__ = [
    "ACTIVE_STATES",
    "AdmissionController",
    "CostEstimate",
    "EncodeFarmService",
    "FairShareQueue",
    "JOB_LOG_FILE",
    "Job",
    "JobLog",
    "JobRecord",
    "ServiceConfig",
    "TERMINAL_STATES",
    "TenantPolicy",
    "Verdict",
    "dispatch_job",
    "estimate_cell",
    "estimate_experiment",
    "format_service_status",
    "is_service_dir",
    "job_cost",
    "job_dir",
    "job_result_path",
    "load_job_result",
    "load_service_status",
    "new_job_id",
    "replay_jobs",
    "submit_job",
]
