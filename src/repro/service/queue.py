"""Weighted fair-share scheduling and admission control.

**Fair share.**  The queue is a per-tenant set of sub-queues ordered
by priority (higher first) then submission order.  Dispatch order
between tenants follows *weighted virtual time*: each tenant carries a
``vtime`` that advances by ``estimated_cost / weight`` whenever one of
its jobs dispatches, and :meth:`FairShareQueue.pop` always serves the
backlogged tenant with the smallest vtime.  Over any busy interval
each tenant therefore receives service proportional to its weight —
a tenant with weight 2 gets two estimated-seconds for every one a
weight-1 tenant gets — while an idle tenant rejoins at the current
minimum vtime instead of cashing in banked idle credit (the classic
start-time fair queueing rule, which is what keeps one silent tenant
from monopolising the farm the moment it wakes up).

**Admission.**  :class:`AdmissionController` renders a verdict before
a job ever enters the queue, from cheap pre-execution evidence only
(the cost estimate of :mod:`repro.service.estimate` and current queue
state): per-tenant queue-depth bounds, per-tenant outstanding-cost
budgets, and a global depth bound.  A rejection is a recorded verdict
with a reason, not an exception — shedding load is normal service
behaviour, not failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ServiceError
from .jobs import Job

#: Estimated seconds charged for a job that carries no estimate (the
#: estimator failed): high enough that unestimatable work cannot slip
#: under a budget for free.
DEFAULT_JOB_COST = 60.0


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's scheduling weight and admission bounds."""

    #: Fair-share weight (relative service rate while backlogged).
    weight: float = 1.0
    #: Maximum jobs this tenant may have queued or running at once.
    max_active: int = 16
    #: Maximum summed estimated seconds queued or running at once
    #: (``None`` = unbounded).
    cost_budget: float | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ServiceError("tenant weight must be positive")
        if self.max_active < 1:
            raise ServiceError("tenant max_active must be >= 1")
        if self.cost_budget is not None and self.cost_budget <= 0:
            raise ServiceError("tenant cost budget must be positive")


@dataclass(frozen=True)
class Verdict:
    """One admission decision (``admitted`` or a reasoned rejection)."""

    admitted: bool
    reason: str | None = None


def job_cost(job: Job) -> float:
    """The estimated-seconds currency one job charges against
    budgets and vtime."""
    if job.estimated_seconds is None or job.estimated_seconds <= 0:
        return DEFAULT_JOB_COST
    return job.estimated_seconds


class FairShareQueue:
    """Priority queue with per-tenant weighted fair-share ordering."""

    def __init__(
        self,
        policies: dict[str, TenantPolicy] | None = None,
        default_policy: TenantPolicy | None = None,
    ) -> None:
        self.policies = dict(policies or {})
        self.default_policy = default_policy or TenantPolicy()
        self._queued: dict[str, list[Job]] = {}
        self._vtime: dict[str, float] = {}
        self._push_seq = 0
        self._order: dict[str, int] = {}

    def policy(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, self.default_policy)

    # -- state -------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(jobs) for jobs in self._queued.values())

    def depth(self, tenant: str | None = None) -> int:
        if tenant is None:
            return len(self)
        return len(self._queued.get(tenant, ()))

    def tenants(self) -> list[str]:
        """Tenants with at least one queued job, stable order."""
        return [t for t, jobs in self._queued.items() if jobs]

    def queued_jobs(self) -> list[Job]:
        """Every queued job (no particular cross-tenant order)."""
        return [job for jobs in self._queued.values() for job in jobs]

    def queued_cost(self, tenant: str) -> float:
        return sum(job_cost(j) for j in self._queued.get(tenant, ()))

    # -- mutation ----------------------------------------------------

    def push(self, job: Job) -> None:
        """Enqueue one admitted job."""
        backlog = self._queued.setdefault(job.tenant, [])
        if job.tenant not in self._vtime:
            # A newly-active tenant starts at the current minimum
            # vtime: fair from now on, no banked idle credit.
            self._vtime[job.tenant] = min(
                self._vtime.values(), default=0.0
            )
        self._order[job.job_id] = self._push_seq
        self._push_seq += 1
        backlog.append(job)
        # Priority first (higher wins), then arrival order.  A re-
        # queued job (lost lease) keeps its original submission seq
        # only for cross-job fairness; its *push* order is what FIFO
        # ties break on, so freshly-requeued work goes behind equal-
        # priority work that never failed.
        backlog.sort(
            key=lambda j: (-j.priority, self._order[j.job_id])
        )

    def remove(self, job_id: str) -> Job | None:
        """Remove a queued job by id (cancellation)."""
        for tenant, jobs in self._queued.items():
            for index, job in enumerate(jobs):
                if job.job_id == job_id:
                    del jobs[index]
                    self._order.pop(job_id, None)
                    return job
        return None

    def pop(self) -> Job | None:
        """The next job under weighted fair share, or ``None``.

        Charges the dispatched job's estimated cost to its tenant's
        virtual time; the caller owns what happens to the job next.
        """
        candidates = [
            tenant for tenant, jobs in self._queued.items() if jobs
        ]
        if not candidates:
            return None
        tenant = min(
            candidates,
            key=lambda t: (self._vtime.get(t, 0.0), t),
        )
        job = self._queued[tenant].pop(0)
        self._order.pop(job.job_id, None)
        # Normalised virtual time: weight-2 tenants age half as fast
        # per estimated second, so they are selected twice as often.
        self._vtime[tenant] = (
            self._vtime.get(tenant, 0.0)
            + job_cost(job) / self.policy(tenant).weight
        )
        return job


class AdmissionController:
    """Pre-queue verdicts from queue state and cost estimates."""

    def __init__(self, max_queue_depth: int = 256) -> None:
        if max_queue_depth < 1:
            raise ServiceError("max queue depth must be >= 1")
        self.max_queue_depth = max_queue_depth

    def admit(
        self,
        job: Job,
        queue: FairShareQueue,
        running: Iterable[Job] = (),
    ) -> Verdict:
        """Decide whether ``job`` may enter ``queue`` right now.

        ``running`` is the set of jobs currently holding dispatch
        leases — they still consume their tenant's depth and budget
        (admitting against queued work alone would let a tenant
        launder its backlog through the dispatcher).
        """
        active = [j for j in running if j.tenant == job.tenant]
        policy = queue.policy(job.tenant)
        total_depth = len(queue) + len(list(running))
        if total_depth >= self.max_queue_depth:
            return Verdict(
                False,
                f"service queue full ({total_depth} active jobs >= "
                f"bound {self.max_queue_depth})",
            )
        tenant_active = queue.depth(job.tenant) + len(active)
        if tenant_active >= policy.max_active:
            return Verdict(
                False,
                f"tenant {job.tenant!r} at its active-job bound "
                f"({tenant_active} >= {policy.max_active})",
            )
        if policy.cost_budget is not None:
            outstanding = queue.queued_cost(job.tenant) + sum(
                job_cost(j) for j in active
            )
            cost = job_cost(job)
            if outstanding + cost > policy.cost_budget:
                return Verdict(
                    False,
                    f"tenant {job.tenant!r} over cost budget: "
                    f"{outstanding:.1f}s outstanding + {cost:.1f}s "
                    f"estimated > {policy.cost_budget:.1f}s",
                )
        return Verdict(True)
