"""The encode-farm service: a long-running front end for experiments.

:class:`EncodeFarmService` wraps the experiment registry and the
supervised worker pool behind a job API (submit / status / result /
cancel) with weighted fair-share scheduling and admission control.
One design rule makes it crash-safe: **the job log is the state, the
object is a cache**.  Every transition is appended to ``jobs.jsonl``
first and then folded back into memory through the same code path
that folds records appended by *other* processes (``repro submit``
sidecars, a second service instance).  A service that dies at any
point can therefore be reconstructed by :meth:`recover` — replay the
log, requeue what was queued, and mark leases whose dispatcher died
as ``lost`` so the fair-share queue hands them out again.  Because a
dispatched job always runs ``resume=True`` against its own run
directory, a re-dispatched job replays its finished cells from the
cell ledger instead of recomputing them: the PR-6 lease/heartbeat
contract, lifted one tier up.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ReproError, ServiceError, SweepInterruptedError
from ..obs.metrics import MetricsRegistry
from ..obs.openmetrics import write_openmetrics
from ..parallel.supervise import drain_guard, drain_requested, last_beat
from .dispatch import dispatch_job, load_job_result
from .estimate import estimate_experiment
from .jobs import (
    ADMITTED,
    CANCELLED,
    COMPLETED,
    FAILED,
    JOB_LOG_FILE,
    LEASE,
    LOST,
    PENDING,
    QUEUED,
    REJECTED,
    SERVICE_METRICS_FILE,
    SUBMITTED,
    Job,
    JobLog,
    job_heartbeat_path,
    new_job_id,
    record_now,
)
from .queue import AdmissionController, FairShareQueue, TenantPolicy


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning for one service instance (not persisted; policy lives
    with the operator, state lives in the log)."""

    #: Per-tenant scheduling/admission policies; unknown tenants get
    #: ``default_policy``.
    tenants: dict[str, TenantPolicy] = field(default_factory=dict)
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    #: Global bound on queued + running jobs (admission rejects past it).
    max_queue_depth: int = 256
    #: Default worker count for jobs that did not pin one.
    workers: int | None = None
    cache_dir: str | None = None
    heartbeat_interval: float = 0.5
    #: Missed beats before a foreign dispatcher's lease is declared
    #: lost (same semantics as cell supervision).
    heartbeat_misses: int = 20

    @property
    def stall_deadline(self) -> float:
        return self.heartbeat_interval * self.heartbeat_misses


class EncodeFarmService:
    """One service instance bound to a service directory.

    Thread-unsafe by design (one serve loop per instance); *process*
    concurrency is handled through the shared job log: concurrent
    submitters append, and every instance folds everyone's records in
    log order, so all instances converge on the same job states.
    """

    def __init__(
        self,
        service_dir: str,
        config: ServiceConfig | None = None,
        *,
        recover: bool = True,
    ) -> None:
        self.service_dir = os.path.abspath(service_dir)
        self.config = config or ServiceConfig()
        self.log = JobLog(os.path.join(self.service_dir, JOB_LOG_FILE))
        self.queue = FairShareQueue(
            self.config.tenants, self.config.default_policy
        )
        self.admission = AdmissionController(self.config.max_queue_depth)
        self.metrics = MetricsRegistry()
        #: job id -> :class:`Job`, folded from the log (insertion order
        #: is log order).
        self.jobs: dict[str, Job] = {}
        self._running: dict[str, Job] = {}
        if recover:
            self.recover()

    # -- state folding (the only writers of self.jobs) ---------------

    def _apply(self, record) -> None:
        """Fold one log record into memory: job state, queue
        membership, running set, counters — all derived from the log,
        so replay after a crash reconstructs every one of them."""
        job = self.jobs.get(record.job_id)
        if job is None:
            job = self.jobs[record.job_id] = Job(
                job_id=record.job_id, seq=len(self.jobs)
            )
        job.apply(record)
        self.metrics.counter(f"service.jobs.{record.kind}").inc()
        if record.kind in (ADMITTED, LOST):
            self._running.pop(job.job_id, None)
            self.queue.push(job)
        elif record.kind == LEASE:
            self.queue.remove(job.job_id)
            self._running[job.job_id] = job
        elif record.kind in (REJECTED, COMPLETED, FAILED, CANCELLED):
            self.queue.remove(job.job_id)
            self._running.pop(job.job_id, None)

    def _drain_log(self) -> None:
        """Fold records appended since the last fold — ours *and*
        other processes' (``repro submit`` sidecars)."""
        for record in self.log.poll_new():
            self._apply(record)

    def _transition(self, job_id: str, kind: str, **fields: Any) -> None:
        """Append one transition, then fold it back through the same
        path foreign records take (append-then-replay keeps memory a
        pure function of the log)."""
        self.log.append(record_now(job_id, kind, **fields))
        self._drain_log()

    # -- recovery ----------------------------------------------------

    def recover(self) -> None:
        """Rebuild state from the log; reap dead dispatchers' leases.

        Safe to call on an empty directory (fresh service) and after a
        SIGKILL mid-anything: queued jobs requeue, a lease whose
        dispatcher pid is gone (or silent past the stall deadline) is
        recorded ``lost`` and requeued, and pending jobs get their
        admission verdict.
        """
        for record in self.log.read_all():
            self._apply(record)
        self._reap_lost()
        self._admit_pending()
        self._write_metrics()

    def _lease_lost(self, job: Job, now_wall: float) -> str | None:
        """Why ``job``'s lease is lost, or ``None`` if its dispatcher
        is demonstrably alive (live pid *and* fresh heartbeat)."""
        pid = job.meta.get("pid")
        if pid == os.getpid():
            return None  # our own (synchronous) dispatch in flight
        if pid is not None:
            try:
                os.kill(int(pid), 0)
            except (ProcessLookupError, ValueError):
                return f"dispatcher pid {pid} is dead"
            except OSError:
                pass  # EPERM etc: the pid exists
        beat = last_beat(job_heartbeat_path(self.service_dir, job.job_id))
        reference = beat["wall"] if beat is not None else job.updated_wall
        silence = now_wall - reference
        if silence > self.config.stall_deadline:
            return (
                f"dispatcher silent for {silence:.1f}s "
                f"(deadline {self.config.stall_deadline:.1f}s)"
            )
        return None

    def _reap_lost(self) -> None:
        now = time.time()
        for job in list(self._running.values()):
            reason = self._lease_lost(job, now)
            if reason is not None:
                self._transition(job.job_id, LOST, meta={"reason": reason})

    # -- admission ---------------------------------------------------

    def _admit_pending(self) -> None:
        """Render verdicts for every job still awaiting admission, in
        submission order (earlier submissions consume budget first)."""
        pending = sorted(
            (j for j in self.jobs.values() if j.state == PENDING),
            key=lambda j: j.seq,
        )
        for job in pending:
            if job.estimated_seconds is None:
                # A detached submitter that could not estimate; the
                # admission tier must, or reject what it cannot cost.
                try:
                    job.estimated_seconds = estimate_experiment(
                        job.experiment_id, job.num_frames
                    ).seconds
                except ServiceError as exc:
                    self._transition(
                        job.job_id, REJECTED, meta={"reason": str(exc)}
                    )
                    continue
            verdict = self.admission.admit(
                job, self.queue, self._running.values()
            )
            if verdict.admitted:
                self._transition(
                    job.job_id,
                    ADMITTED,
                    estimated_seconds=job.estimated_seconds,
                )
            else:
                self._transition(
                    job.job_id, REJECTED, meta={"reason": verdict.reason}
                )

    # -- the job API -------------------------------------------------

    def submit(
        self,
        experiment_id: str,
        *,
        tenant: str = "default",
        priority: int = 0,
        workers: int | None = None,
        num_frames: int | None = None,
    ) -> Job:
        """Submit one job and render its admission verdict inline.

        Raises :class:`~repro.errors.ServiceError` for an unknown
        experiment id; an admission *rejection* is returned as a job
        in state ``rejected``, not raised.
        """
        if not tenant:
            raise ServiceError("tenant must be a non-empty string")
        estimate = estimate_experiment(experiment_id, num_frames)
        job_id = new_job_id()
        self._transition(
            job_id,
            SUBMITTED,
            tenant=tenant,
            experiment_id=experiment_id,
            priority=int(priority),
            workers=workers,
            num_frames=num_frames,
            estimated_seconds=estimate.seconds,
            meta={"estimate": estimate.to_jsonable()},
        )
        self._admit_pending()
        self._write_metrics()
        return self.jobs[job_id]

    def cancel(self, job_id: str) -> Job:
        """Cancel a job that has not started running."""
        self._drain_log()
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if job.state not in (PENDING, QUEUED):
            raise ServiceError(
                f"job {job_id} is {job.state}; only pending or queued "
                f"jobs can be cancelled"
            )
        self._transition(job_id, CANCELLED, meta={"reason": "cancelled"})
        self._write_metrics()
        return job

    def job(self, job_id: str) -> Job:
        self._drain_log()
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def list_jobs(self) -> list[Job]:
        self._drain_log()
        return list(self.jobs.values())

    def result(self, job_id: str) -> dict[str, Any] | None:
        """The completed job's result document, else ``None``."""
        return load_job_result(self.service_dir, self.job(job_id).job_id)

    # -- dispatch ----------------------------------------------------

    def poll_once(self) -> Job | None:
        """One scheduler turn: ingest, reap, admit, dispatch at most
        one job to completion.  Returns the job it ran (terminal state
        on it says how that went) or ``None`` if the queue was idle.
        """
        self._drain_log()
        self._reap_lost()
        self._admit_pending()
        job = self.queue.pop()
        if job is None:
            self._write_metrics()
            return None
        self._transition(
            job.job_id,
            LEASE,
            meta={
                "pid": os.getpid(),
                "workers": (
                    job.workers
                    if job.workers is not None
                    else self.config.workers
                ),
            },
        )
        try:
            completion = dispatch_job(
                self.service_dir,
                job,
                workers=self.config.workers,
                cache_dir=self.config.cache_dir,
                heartbeat_interval=self.config.heartbeat_interval,
            )
        except SweepInterruptedError as exc:
            # Drained mid-job: the job is not failed, it is resumable.
            # ``lost`` puts it back in the queue for the next serve.
            self._transition(
                job.job_id,
                LOST,
                meta={"reason": f"drained on {exc.signal_name}"},
            )
            self._write_metrics()
            raise
        except Exception as exc:  # noqa: BLE001 - a job bug must not kill the farm
            self._transition(
                job.job_id,
                FAILED,
                meta={"reason": f"{type(exc).__name__}: {exc}"},
            )
        else:
            self._transition(job.job_id, COMPLETED, meta=completion)
        self._write_metrics()
        return job

    def serve(
        self,
        *,
        max_jobs: int | None = None,
        idle_exit: float | None = None,
        poll_interval: float = 0.25,
    ) -> int:
        """Run the scheduler loop; returns jobs dispatched.

        Exits when ``max_jobs`` jobs have been dispatched, when the
        queue has been idle for ``idle_exit`` seconds, or — via
        :class:`~repro.errors.SweepInterruptedError` — on the first
        SIGINT/SIGTERM, leaving every job in a resumable state.
        """
        dispatched = 0
        idle_since = time.monotonic()
        with drain_guard():
            while True:
                signal_name = drain_requested()
                if signal_name:
                    raise SweepInterruptedError(
                        signal_name, dispatched, dispatched + len(self.queue)
                    )
                job = self.poll_once()
                if job is not None:
                    dispatched += 1
                    idle_since = time.monotonic()
                    if max_jobs is not None and dispatched >= max_jobs:
                        return dispatched
                    continue
                if (
                    idle_exit is not None
                    and time.monotonic() - idle_since >= idle_exit
                ):
                    return dispatched
                time.sleep(poll_interval)

    # -- telemetry ---------------------------------------------------

    def _write_metrics(self) -> None:
        """Refresh gauges and publish the OpenMetrics snapshot.

        Counters are folded from the log in :meth:`_apply`, so after a
        restart the exposition reflects lifetime totals, not this
        process's uptime.  Publication failure never fails the
        service (observability is advisory here as everywhere else).
        """
        self.metrics.gauge("service.queue.depth").set(float(len(self.queue)))
        self.metrics.gauge("service.jobs.running").set(
            float(len(self._running))
        )
        path = os.path.join(self.service_dir, SERVICE_METRICS_FILE)
        try:
            write_openmetrics(path, self.metrics.snapshot())
        except (ReproError, OSError):
            pass


def submit_job(
    service_dir: str,
    experiment_id: str,
    *,
    tenant: str = "default",
    priority: int = 0,
    workers: int | None = None,
    num_frames: int | None = None,
) -> str:
    """Append one ``submitted`` record from a sidecar process.

    This is what ``repro submit`` does when a separate serve process
    owns the directory: append the spec and return the job id; the
    serving instance's next poll ingests the record and renders the
    admission verdict.  (:meth:`EncodeFarmService.submit` is the
    in-process path that also admits inline.)
    """
    if not tenant:
        raise ServiceError("tenant must be a non-empty string")
    estimate = estimate_experiment(experiment_id, num_frames)
    log = JobLog(
        os.path.join(os.path.abspath(service_dir), JOB_LOG_FILE)
    )
    job_id = new_job_id()
    log.append(
        record_now(
            job_id,
            SUBMITTED,
            tenant=tenant,
            experiment_id=experiment_id,
            priority=int(priority),
            workers=workers,
            num_frames=num_frames,
            estimated_seconds=estimate.seconds,
            meta={"estimate": estimate.to_jsonable()},
        )
    )
    return job_id
