"""The on-disk result cache: one JSON file per content-addressed key.

Layout is two-level (``<root>/<key[:2]>/<key>.json``) so a large cache
never puts tens of thousands of entries in one directory.  Writes are
atomic — serialize to a temp file in the destination directory, then
``os.replace`` — so concurrent pool workers publishing the same key
race benignly: whichever rename lands last wins and both files were
identical by construction (the key *is* the content address of the
inputs).

Lookups never raise.  A missing entry is a miss; a corrupt, truncated,
stale-schema or key-mismatched entry is an *invalidation* (counted
separately, best-effort deleted) and then a miss.  Hit/miss/
invalidation counters feed the ambient metrics registry, so a run's
``--metrics-json`` artifact reports exactly how much work the cache
saved.

**Remote tier.**  ``REPRO_CACHE_REMOTE`` (or the ``remote=``
constructor argument) names a second, read-through backend directory
with the same layout — typically a shared filesystem seeded by CI or
another machine.  A local miss falls through to the remote; a remote
hit is *promoted* into the local tier (so the next lookup is one
local ``open`` away) and local publishes are mirrored best-effort.
The remote is advisory end to end: unreadable, corrupt or unwritable
remote state only moves ``cache.remote.*`` counters, never an
experiment's outcome.  ``cache.hits``/``cache.misses`` keep their
single-tier meaning (local hits; both-tier misses), so warm-cache
assertions written before the remote tier existed still hold.
"""

from __future__ import annotations

import json
import os
from typing import Any

from ..errors import CacheError
from ..obs.context import record_metric
from ..resilience.faults import fault_point
from .keys import CACHE_SCHEMA_VERSION

#: Environment override for the default cache location.
_ENV_DIR = "REPRO_CACHE_DIR"

#: Environment pointing at the read-through remote backend directory.
_ENV_REMOTE = "REPRO_CACHE_REMOTE"

#: Sentinel distinguishing "remote missed" from a stored null payload.
_MISS = object()


def default_cache_dir() -> str:
    """Where caches live when no explicit path is given."""
    return os.environ.get(_ENV_DIR) or os.path.join(".repro", "cache")


def default_remote_dir() -> str | None:
    """The configured remote backend directory, if any."""
    return os.environ.get(_ENV_REMOTE) or None


class ResultCache:
    """Content-addressed store of JSON-able cell payloads.

    ``salt`` is folded into every key computed *for* this cache by
    :meth:`repro.core.session.Session` — changing it orphans (but does
    not delete) every existing entry.
    """

    def __init__(
        self, root: str, salt: str = "", remote: str | None = None
    ) -> None:
        self.root = root
        self.salt = salt
        # None = inherit the environment; "" = explicitly no remote.
        self.remote = (
            remote if remote is not None else default_remote_dir()
        ) or None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.writes = 0
        self.remote_hits = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _remote_path(self, key: str) -> str:
        assert self.remote is not None
        return os.path.join(self.remote, key[:2], f"{key}.json")

    @staticmethod
    def _valid(entry: Any, key: str) -> bool:
        return (
            isinstance(entry, dict)
            and entry.get("schema_version") == CACHE_SCHEMA_VERSION
            and entry.get("key") == key
            and "payload" in entry
        )

    # -- lookup ------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The payload stored under ``key``, or ``None`` (a miss).

        Never raises: unreadable or corrupt entries are invalidated
        (deleted best-effort) and reported as misses.
        """
        path = self._path(key)
        try:
            # Injectable read-side disk fault (an ``enospc``/EIO-class
            # OSError lands in the invalidate branch below, preserving
            # the never-raise contract under injection too).
            fault_point(f"cache:get:{key[:12]}")
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return self._fall_through(key)
        except (OSError, ValueError, UnicodeDecodeError):
            self._invalidate(path)
            return self._fall_through(key)
        if not self._valid(entry, key):
            self._invalidate(path)
            return self._fall_through(key)
        self.hits += 1
        record_metric("counter", "cache.hits")
        return entry["payload"]

    def _fall_through(self, key: str) -> Any | None:
        """Local tier missed: consult the remote, else record a miss."""
        payload = self._remote_get(key)
        if payload is not _MISS:
            return payload
        self._miss()
        return None

    def _remote_get(self, key: str) -> Any:
        """Remote lookup + local promotion; ``_MISS`` when absent,
        unreadable, invalid, or no remote is configured."""
        if self.remote is None:
            return _MISS
        path = self._remote_path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return _MISS
        except (OSError, ValueError, UnicodeDecodeError):
            record_metric("counter", "cache.remote.errors")
            return _MISS
        if not self._valid(entry, key):
            # Never delete remote state (it is someone else's tier);
            # just refuse to trust it.
            record_metric("counter", "cache.remote.errors")
            return _MISS
        self.remote_hits += 1
        record_metric("counter", "cache.remote.hits")
        if self._write_entry(self._path(key), entry):
            record_metric("counter", "cache.remote.promotions")
        return entry["payload"]

    def _miss(self) -> None:
        self.misses += 1
        record_metric("counter", "cache.misses")

    def _invalidate(self, path: str) -> None:
        self.invalidations += 1
        record_metric("counter", "cache.invalidations")
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- publish -----------------------------------------------------

    def put(self, key: str, payload: Any) -> bool:
        """Atomically publish ``payload`` under ``key``.

        Returns False (and counts ``cache.errors``) when the filesystem
        refuses — a cache that cannot write must not fail the cell.
        """
        path = self._path(key)
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "payload": payload,
        }
        try:
            # Injectable write-side disk fault (ENOSPC on publish must
            # not fail the cell — it is a counted non-write).
            fault_point(f"cache:put:{key[:12]}")
            written = self._write_entry(path, entry)
        except OSError:
            written = False
        if not written:
            record_metric("counter", "cache.errors")
            return False
        self.writes += 1
        record_metric("counter", "cache.writes")
        # Mirror to the remote tier best-effort: a shared backend that
        # cannot be written is a counted condition, not a failure.
        if self.remote is not None:
            if self._write_entry(self._remote_path(key), entry):
                record_metric("counter", "cache.remote.writes")
            else:
                record_metric("counter", "cache.remote.errors")
        return True

    @staticmethod
    def _write_entry(path: str, entry: dict[str, Any]) -> bool:
        """Atomic serialize-then-rename publish of one entry."""
        tmp = f"{path}.{os.getpid()}.tmp"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
                handle.write("\n")
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    # -- administration ----------------------------------------------

    def _entry_paths(self) -> list[str]:
        paths: list[str] = []
        try:
            shards = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise CacheError(
                f"cannot read cache directory {self.root!r}: {exc}"
            ) from exc
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError as exc:
                raise CacheError(
                    f"cannot read cache shard {shard_dir!r}: {exc}"
                ) from exc
            paths.extend(
                os.path.join(shard_dir, name)
                for name in names
                if name.endswith(".json")
            )
        return paths

    def stats(self) -> dict[str, Any]:
        """On-disk entry count/bytes plus this instance's counters."""
        paths = self._entry_paths()
        total_bytes = 0
        for path in paths:
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                pass
        return {
            "root": self.root,
            "remote": self.remote,
            "entries": len(paths),
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "writes": self.writes,
            "remote_hits": self.remote_hits,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                os.unlink(path)
                removed += 1
            except OSError as exc:
                raise CacheError(
                    f"cannot remove cache entry {path!r}: {exc}"
                ) from exc
        return removed

    def __len__(self) -> int:
        return len(self._entry_paths())
