"""The on-disk result cache: one JSON file per content-addressed key.

Layout is two-level (``<root>/<key[:2]>/<key>.json``) so a large cache
never puts tens of thousands of entries in one directory.  Writes are
atomic — serialize to a temp file in the destination directory, then
``os.replace`` — so concurrent pool workers publishing the same key
race benignly: whichever rename lands last wins and both files were
identical by construction (the key *is* the content address of the
inputs).

Lookups never raise.  A missing entry is a miss; a corrupt, truncated,
stale-schema or key-mismatched entry is an *invalidation* (counted
separately, best-effort deleted) and then a miss.  Hit/miss/
invalidation counters feed the ambient metrics registry, so a run's
``--metrics-json`` artifact reports exactly how much work the cache
saved.
"""

from __future__ import annotations

import json
import os
from typing import Any

from ..errors import CacheError
from ..obs.context import record_metric
from ..resilience.faults import fault_point
from .keys import CACHE_SCHEMA_VERSION

#: Environment override for the default cache location.
_ENV_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """Where caches live when no explicit path is given."""
    return os.environ.get(_ENV_DIR) or os.path.join(".repro", "cache")


class ResultCache:
    """Content-addressed store of JSON-able cell payloads.

    ``salt`` is folded into every key computed *for* this cache by
    :meth:`repro.core.session.Session` — changing it orphans (but does
    not delete) every existing entry.
    """

    def __init__(self, root: str, salt: str = "") -> None:
        self.root = root
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.writes = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- lookup ------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The payload stored under ``key``, or ``None`` (a miss).

        Never raises: unreadable or corrupt entries are invalidated
        (deleted best-effort) and reported as misses.
        """
        path = self._path(key)
        try:
            # Injectable read-side disk fault (an ``enospc``/EIO-class
            # OSError lands in the invalidate branch below, preserving
            # the never-raise contract under injection too).
            fault_point(f"cache:get:{key[:12]}")
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self._miss()
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._invalidate(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema_version") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
            or "payload" not in entry
        ):
            self._invalidate(path)
            return None
        self.hits += 1
        record_metric("counter", "cache.hits")
        return entry["payload"]

    def _miss(self) -> None:
        self.misses += 1
        record_metric("counter", "cache.misses")

    def _invalidate(self, path: str) -> None:
        self.invalidations += 1
        record_metric("counter", "cache.invalidations")
        try:
            os.unlink(path)
        except OSError:
            pass
        self._miss()

    # -- publish -----------------------------------------------------

    def put(self, key: str, payload: Any) -> bool:
        """Atomically publish ``payload`` under ``key``.

        Returns False (and counts ``cache.errors``) when the filesystem
        refuses — a cache that cannot write must not fail the cell.
        """
        path = self._path(key)
        tmp = f"{path}.{os.getpid()}.tmp"
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "payload": payload,
        }
        try:
            # Injectable write-side disk fault (ENOSPC on publish must
            # not fail the cell — it is a counted non-write).
            fault_point(f"cache:put:{key[:12]}")
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
                handle.write("\n")
            os.replace(tmp, path)
        except OSError:
            record_metric("counter", "cache.errors")
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.writes += 1
        record_metric("counter", "cache.writes")
        return True

    # -- administration ----------------------------------------------

    def _entry_paths(self) -> list[str]:
        paths: list[str] = []
        try:
            shards = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise CacheError(
                f"cannot read cache directory {self.root!r}: {exc}"
            ) from exc
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError as exc:
                raise CacheError(
                    f"cannot read cache shard {shard_dir!r}: {exc}"
                ) from exc
            paths.extend(
                os.path.join(shard_dir, name)
                for name in names
                if name.endswith(".json")
            )
        return paths

    def stats(self) -> dict[str, Any]:
        """On-disk entry count/bytes plus this instance's counters."""
        paths = self._entry_paths()
        total_bytes = 0
        for path in paths:
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                pass
        return {
            "root": self.root,
            "entries": len(paths),
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "writes": self.writes,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                os.unlink(path)
                removed += 1
            except OSError as exc:
                raise CacheError(
                    f"cannot remove cache entry {path!r}: {exc}"
                ) from exc
        return removed

    def __len__(self) -> int:
        return len(self._entry_paths())
