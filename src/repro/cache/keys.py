"""Content-addressed cache keys for characterization cells.

A cell's key is the SHA-256 of a canonical JSON document naming
*everything its result depends on*:

- the codec configuration (encoder name, CRF, preset);
- the video identity (clip name plus the proxy frame count, since a
  shortened proxy produces different counters);
- the machine model (every field of the
  :class:`~repro.uarch.machine.MachineConfig`, so changing a latency or
  a cache geometry changes the key);
- a version salt combining the cache's own schema version with the
  serialized-result schema versions, so a code change that alters what
  a cell produces invalidates every old entry at once.

Two processes (or two runs, or two machines sharing a filesystem) that
would compute the same result therefore hash to the same key — which is
what lets the parallel sweep pool share one on-disk cache without any
coordination beyond atomic file replacement.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from ..core.report import RESULT_SCHEMA_VERSION
from ..uarch.machine import MachineConfig

#: Bump when the cache entry layout (or the meaning of a key) changes
#: incompatibly; every existing entry then reads as stale.
CACHE_SCHEMA_VERSION = 1

#: The code/schema portion of every key.  RESULT_SCHEMA_VERSION rides
#: along because cached payloads flow through the same serializer as
#: checkpointed results.
CODE_SALT = f"cell-cache:v{CACHE_SCHEMA_VERSION}:result:v{RESULT_SCHEMA_VERSION}"


def _canonical(document: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def machine_fingerprint(machine: MachineConfig) -> str:
    """Stable digest of every field of a machine description."""
    document = dataclasses.asdict(machine)
    return hashlib.sha256(_canonical(document).encode()).hexdigest()


def video_content_key(spec: Any) -> str:
    """Content address of one synthetic video's pixel data.

    ``spec`` is the :class:`~repro.video.synthetic.ContentSpec` that
    fully determines the generated frames (the generator is seeded from
    the spec, so equal specs produce bit-identical planes).  Sessions
    key their in-memory video LRU on this, and the shared-memory data
    plane uses it to publish each distinct video exactly once per
    sweep.
    """
    document = {
        "video": dataclasses.asdict(spec),
        "code_salt": CODE_SALT,
    }
    return hashlib.sha256(_canonical(document).encode()).hexdigest()


def cell_cache_key(
    codec: str,
    video: str,
    crf: float,
    preset: int,
    num_frames: int | None,
    machine: MachineConfig,
    salt: str = "",
) -> str:
    """Content address of one characterization cell's result.

    ``salt`` is the user-facing invalidation knob (a config hash, an
    experiment-campaign id); the code/schema salt is always mixed in.
    """
    document = {
        "codec": codec,
        "video": video,
        "crf": float(crf),
        "preset": int(preset),
        "num_frames": num_frames,
        "machine": machine_fingerprint(machine),
        "code_salt": CODE_SALT,
        "salt": salt,
    }
    return hashlib.sha256(_canonical(document).encode()).hexdigest()
