"""Persistent, content-addressed memoisation of sweep-cell results.

The paper's figures re-measure the same (codec, video, CRF, preset)
cells over and over — Figs. 3–7 all read the CRF sweep — and nothing
about a cell's result depends on *when* it runs.  This package stores
each cell's serialized :class:`~repro.uarch.perfcounters.PerfReport`
under a content address (:mod:`repro.cache.keys`) in a shared on-disk
store (:mod:`repro.cache.store`), so re-runs, resumed runs, parallel
pool workers and entirely separate experiment invocations all reuse
one another's work.
"""

from .keys import (
    CACHE_SCHEMA_VERSION,
    CODE_SALT,
    cell_cache_key,
    machine_fingerprint,
    video_content_key,
)
from .store import ResultCache, default_cache_dir, default_remote_dir

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CODE_SALT",
    "ResultCache",
    "cell_cache_key",
    "default_cache_dir",
    "default_remote_dir",
    "machine_fingerprint",
    "video_content_key",
]
